/**
 * @file
 * Differential tests pinning the fleet tier to the flat cluster layer
 * it is built from:
 *
 *  - a 1-shard FleetRouter is byte-identical to the flat Router under
 *    every (replica policy x shard policy) pair, including outage
 *    windows, a full blackout (the shed path must advance the same
 *    round-robin cursor), and surge windows,
 *  - a 1-shard fleet Cluster run is byte-identical to the flat path
 *    under chaos plans, traffic mixes, and training placement,
 *  - a pinned autoscaler (min == max == fleet size) routes exactly
 *    like an autoscaler-disabled fleet,
 *  - replicas >> workers: the strided fan-out is byte-identical to
 *    serial (the runClusterSweep one-replica-per-worker fix),
 *  - ReplicaEstimator::windowP99 is bitwise LatencyTracker::percentile
 *    over the same window (the shared exact-rank kernel), and the
 *    +inf / exact-rank guard holds (the PR4 NaN bug class).
 */

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/fleet.hh"
#include "cluster/router.hh"
#include "cluster/sweep.hh"
#include "cluster_digest.hh"
#include "common/random.hh"
#include "core/experiment.hh"
#include "fault/chaos_plan.hh"
#include "fault/traffic_mix.hh"
#include "stats/histogram.hh"

namespace equinox
{
namespace
{

core::ExperimentOptions
sweepOptions()
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    opts.max_sim_s = 0.02;
    return opts;
}

/** One-shard FleetRouter::Config over the flat router's knobs. */
cluster::FleetRouter::Config
oneShardConfig(cluster::RoutingPolicy policy,
               cluster::RoutingPolicy shard_policy, std::size_t replicas,
               double mu, std::size_t window)
{
    cluster::FleetRouter::Config fc;
    fc.replica_policy = policy;
    fc.shard_policy = shard_policy;
    fc.replicas = replicas;
    fc.shards = 1;
    fc.service_rate_per_cycle = mu;
    fc.latency_window = window;
    return fc;
}

/** Every behavioural field of two cluster points, compared bitwise
 *  (the fleet-tier reporting fields are intentionally excluded: the
 *  two sides route through different code paths and only the fleet
 *  side fills them). */
void
expectCoreEqual(const cluster::ClusterPointResult &a,
                const cluster::ClusterPointResult &b)
{
    EXPECT_EQ(a.generated_candidates, b.generated_candidates);
    EXPECT_EQ(a.router_shed, b.router_shed);
    EXPECT_EQ(a.rerouted, b.rerouted);
    EXPECT_EQ(a.completed_requests, b.completed_requests);
    EXPECT_EQ(a.training_iterations, b.training_iterations);
    EXPECT_EQ(a.committed_training_iterations,
              b.committed_training_iterations);
    EXPECT_EQ(a.aggregate_inference_ops, b.aggregate_inference_ops);
    EXPECT_EQ(a.aggregate_training_ops, b.aggregate_training_ops);
    EXPECT_EQ(a.merged_latency_cycles.count(),
              b.merged_latency_cycles.count());
    EXPECT_EQ(a.merged_latency_cycles.mean(),
              b.merged_latency_cycles.mean());
    EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
    EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.max_latency_s, b.max_latency_s);
    EXPECT_EQ(a.admitted_requests, b.admitted_requests);
    EXPECT_EQ(a.retired_requests, b.retired_requests);
    EXPECT_EQ(a.inflight_requests, b.inflight_requests);
    EXPECT_EQ(a.shed_requests, b.shed_requests);
    EXPECT_EQ(a.faults.totalFaults(), b.faults.totalFaults());
    EXPECT_EQ(a.faults.downtime_cycles, b.faults.downtime_cycles);
    EXPECT_EQ(a.outage_cycles, b.outage_cycles);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.request_availability, b.request_availability);
    EXPECT_EQ(a.goodput_rps, b.goodput_rps);
    ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
    for (std::size_t r = 0; r < a.per_replica.size(); ++r) {
        EXPECT_EQ(a.per_replica[r].assigned_candidates,
                  b.per_replica[r].assigned_candidates);
        EXPECT_EQ(a.per_replica[r].training, b.per_replica[r].training);
        EXPECT_EQ(testutil::digestOf(a.per_replica[r].sim),
                  testutil::digestOf(b.per_replica[r].sim))
            << "replica " << r << " sim digest diverged";
    }
}

// ---------------------------------------------------------------------
// 1-shard FleetRouter == flat Router, every policy pair, with outages
// (including a full blackout) and surge windows.

TEST(FleetDifferential, OneShardRouterMatchesFlatEveryPolicy)
{
    const std::size_t n = 6;
    const double mu = 2.0e-4;
    const std::size_t window = 16;
    const Tick horizon = 400000;

    // Per-replica outages, plus a window where EVERY replica is dark:
    // the flat router sheds there while still advancing its rotation
    // cursor, and the hierarchy must do exactly the same.
    std::vector<cluster::RouterOutage> outages;
    outages.push_back({1, 10000, 90000});
    outages.push_back({4, 150000, 230000});
    for (std::size_t r = 0; r < n; ++r)
        outages.push_back({r, 250000, 280000});

    std::vector<cluster::RouterSurge> surges = {
        {120000, 200000, 3.0}, {300000, 340000, 2.0}};

    for (auto policy : cluster::allRoutingPolicies()) {
        for (auto shard_policy : cluster::allRoutingPolicies()) {
            cluster::Router flat(policy, n, mu, window, outages);
            cluster::RouterResult a =
                flat.route(6.0e-4, 99, horizon, surges);

            cluster::FleetRouter fleet(
                oneShardConfig(policy, shard_policy, n, mu, window),
                outages);
            cluster::RouterResult b =
                fleet.route(6.0e-4, 99, horizon, surges);

            EXPECT_EQ(a.generated, b.generated);
            EXPECT_EQ(a.traces, b.traces);
            EXPECT_EQ(a.assigned, b.assigned);
            EXPECT_EQ(a.shed, b.shed);
            EXPECT_EQ(a.rerouted, b.rerouted);
            EXPECT_EQ(fleet.shardRerouted(), 0u);
        }
    }
}

// ---------------------------------------------------------------------
// 1-shard fleet Cluster == flat Cluster, under chaos, a traffic mix,
// and restricted training placement -- the whole stack, byte for byte.

TEST(FleetDifferential, OneShardClusterMatchesFlatUnderChaos)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = sweepOptions();

    cluster::ClusterSpec flat;
    flat.replicas = 5;
    flat.policy = cluster::RoutingPolicy::JoinShortestQueue;
    flat.train_replicas = 2;
    flat.chaos =
        fault::chaosScenario("flash_crowd_outage", opts.max_sim_s, 7);

    cluster::ClusterSpec sharded = flat;
    sharded.fleet.shards = 1;
    sharded.fleet.shard_policy = cluster::RoutingPolicy::RoundRobin;

    cluster::ClusterPointResult a =
        cluster::Cluster(cfg, flat).run(0.7, opts);
    cluster::ClusterPointResult b =
        cluster::Cluster(cfg, sharded).run(0.7, opts);

    EXPECT_EQ(a.shards, 0u);
    EXPECT_EQ(b.shards, 1u);
    ASSERT_EQ(b.per_shard.size(), 1u);
    EXPECT_EQ(b.per_shard[0].replicas, 5u);
    expectCoreEqual(a, b);

    // The single shard's merge IS the fleet merge, bitwise.
    EXPECT_EQ(b.per_shard[0].merged_latency_cycles.count(),
              b.merged_latency_cycles.count());
    EXPECT_EQ(b.per_shard[0].merged_latency_cycles.percentile(0.99),
              b.merged_latency_cycles.percentile(0.99));
}

TEST(FleetDifferential, OneShardClusterMatchesFlatUnderTrafficMix)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = sweepOptions();

    // A traffic mix alone keeps the flat Router (shards = 0); adding
    // a 1-shard hierarchy on top must not change a single byte.
    cluster::ClusterSpec flat;
    flat.replicas = 4;
    flat.policy = cluster::RoutingPolicy::LatencyAware;
    flat.fleet.traffic =
        fault::trafficScenario("multi_tenant", opts.max_sim_s);

    cluster::ClusterSpec sharded = flat;
    sharded.fleet.shards = 1;

    cluster::ClusterPointResult a =
        cluster::Cluster(cfg, flat).run(0.6, opts);
    cluster::ClusterPointResult b =
        cluster::Cluster(cfg, sharded).run(0.6, opts);
    EXPECT_EQ(a.shards, 0u);
    EXPECT_EQ(b.shards, 1u);
    expectCoreEqual(a, b);
}

// ---------------------------------------------------------------------
// An autoscaler pinned to the fleet size (min == max == initial == n)
// can never act, so it must route exactly like a disabled one.

TEST(FleetDifferential, PinnedAutoscalerMatchesDisabled)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = sweepOptions();

    cluster::ClusterSpec base;
    base.replicas = 6;
    base.policy = cluster::RoutingPolicy::RoundRobin;
    base.fleet.shards = 3;
    base.fleet.shard_policy = cluster::RoutingPolicy::JoinShortestQueue;
    base.outages.push_back({2, 0.002, 0.006});

    cluster::ClusterSpec pinned = base;
    pinned.fleet.autoscaler.enabled = true;
    pinned.fleet.autoscaler.min_replicas = 6;
    pinned.fleet.autoscaler.max_replicas = 6;
    pinned.fleet.autoscaler.initial_replicas = 6;
    pinned.fleet.autoscaler.target_p99_s = 0.001;

    cluster::ClusterPointResult a =
        cluster::Cluster(cfg, base).run(0.8, opts);
    cluster::ClusterPointResult b =
        cluster::Cluster(cfg, pinned).run(0.8, opts);

    EXPECT_FALSE(a.autoscaled);
    EXPECT_TRUE(b.autoscaled);
    EXPECT_EQ(b.autoscaler.scale_ups, 0u);
    EXPECT_EQ(b.autoscaler.scale_downs, 0u);
    EXPECT_EQ(b.autoscaler.min_active, 6u);
    EXPECT_EQ(b.autoscaler.max_active, 6u);
    expectCoreEqual(a, b);
    ASSERT_EQ(a.per_shard.size(), b.per_shard.size());
    for (std::size_t s = 0; s < a.per_shard.size(); ++s) {
        EXPECT_EQ(a.per_shard[s].assigned_candidates,
                  b.per_shard[s].assigned_candidates);
        EXPECT_EQ(a.per_shard[s].merged_latency_cycles.count(),
                  b.per_shard[s].merged_latency_cycles.count());
    }
}

// ---------------------------------------------------------------------
// Replicas >> workers: the strided fan-out (one task per worker slot,
// indices round-robined) is byte-identical to serial. This is the
// regression test for runClusterSweep's one-replica-per-worker
// assumption.

TEST(FleetDifferential, ManyReplicasFewWorkersMatchesSerial)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = sweepOptions();
    opts.measure_requests = 240;
    opts.max_sim_s = 0.01;

    cluster::ClusterSpec spec;
    spec.replicas = 24;
    spec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    spec.fleet.shards = 4;
    spec.train_replicas = 3;

    cluster::Cluster fleet(cfg, spec);
    core::ExperimentOptions serial = opts;
    serial.jobs = 1;
    core::ExperimentOptions strided = opts;
    strided.jobs = 5; // 24 replicas round-robin over 5 workers

    std::uint64_t a = testutil::digestOf(fleet.run(0.6, serial));
    std::uint64_t b = testutil::digestOf(fleet.run(0.6, strided));
    EXPECT_EQ(a, b);
}

TEST(FleetDifferential, SweepJobsIdentityAtFleetScale)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = sweepOptions();
    opts.measure_requests = 160;
    opts.max_sim_s = 0.008;

    cluster::ClusterSpec spec;
    spec.replicas = 18;
    spec.fleet.shards = 3;
    spec.fleet.autoscaler.enabled = true;
    spec.fleet.autoscaler.min_replicas = 6;
    spec.fleet.autoscaler.target_p99_s = 0.002;
    spec.fleet.traffic =
        fault::trafficScenario("flash_crowd", opts.max_sim_s);

    std::vector<double> loads = {0.4, 0.9};
    core::ExperimentOptions serial = opts;
    serial.jobs = 1;
    core::ExperimentOptions fanned = opts;
    fanned.jobs = 4;
    EXPECT_EQ(
        testutil::digestOf(core::runClusterSweep(cfg, spec, loads, serial)),
        testutil::digestOf(
            core::runClusterSweep(cfg, spec, loads, fanned)));
}

// ---------------------------------------------------------------------
// The shared exact-rank percentile kernel (the PR4 +inf/NaN bug class).

TEST(FleetDifferential, ExactPercentileSortedGuardsInfiniteNeighbours)
{
    const double inf = std::numeric_limits<double>::infinity();
    // Exact-rank query whose upper neighbour is +inf: the guard must
    // return the order statistic itself, never 0 * inf = NaN.
    std::vector<double> sorted = {1.0, 2.0, inf};
    double mid = stats::exactPercentileSorted(sorted, 0.5);
    EXPECT_EQ(mid, 2.0);
    EXPECT_FALSE(std::isnan(mid));
    EXPECT_EQ(stats::exactPercentileSorted(sorted, 1.0), inf);
    EXPECT_EQ(stats::exactPercentileSorted({7.5}, 0.99), 7.5);

    // Interpolated queries agree with LatencyTracker bitwise.
    stats::LatencyTracker tracker;
    std::vector<double> samples = {0.25, 4.0, 1.0, 9.5, 2.0, 3.25};
    for (double s : samples)
        tracker.record(s);
    std::vector<double> copy = samples;
    std::sort(copy.begin(), copy.end());
    for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(stats::exactPercentileSorted(copy, p),
                  tracker.percentile(p));
    }
}

TEST(FleetDifferential, EstimatorWindowP99IsBitwiseTrackerPercentile)
{
    // Replay the estimator's fluid model arithmetic side by side and
    // pin windowP99 to LatencyTracker::percentile over the identical
    // window -- bitwise, across random assign/drain schedules.
    Rng rng(20260808);
    for (int trial = 0; trial < 20; ++trial) {
        double mu = rng.uniform(1e-5, 5e-4);
        std::size_t window = 1 + rng.uniformInt(1, 24);
        cluster::ReplicaEstimator est(mu, window);

        double backlog = 0.0;
        Tick last = 0;
        std::deque<double> recent;
        Tick t = 0;
        for (int i = 0; i < 200; ++i) {
            t += rng.uniformInt(0, 5000);
            est.assign(t);
            // The shadow model: drain, estimate, then enqueue -- the
            // exact operation order ReplicaEstimator::assign runs.
            double drained = static_cast<double>(t - last) * mu;
            backlog = backlog > drained ? backlog - drained : 0.0;
            last = t;
            recent.push_back((backlog + 1.0) / mu);
            if (recent.size() > window)
                recent.pop_front();
            backlog += 1.0;

            stats::LatencyTracker tracker;
            for (double s : recent)
                tracker.record(s);
            ASSERT_EQ(est.windowP99(), tracker.percentile(0.99))
                << "trial " << trial << " step " << i;
            ASSERT_EQ(est.lastAssignmentEstimateCycles(), recent.back());
        }
    }
}

} // namespace
} // namespace equinox

/**
 * @file
 * Unit tests for src/common: units, RNG determinism and distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace equinox
{
namespace
{

TEST(Units, FrequencyHelpers)
{
    EXPECT_DOUBLE_EQ(units::MHz(532), 532e6);
    EXPECT_DOUBLE_EQ(units::GHz(2.4), 2.4e9);
}

TEST(Units, CapacityHelpers)
{
    EXPECT_EQ(units::KiB(32), 32ull * 1024);
    EXPECT_EQ(units::MiB(75), 75ull * 1024 * 1024);
    EXPECT_EQ(units::GiB(1), 1ull << 30);
}

TEST(Units, SecondsToCyclesRoundsUp)
{
    // 1.5 cycles at 1 Hz -> 2 cycles.
    EXPECT_EQ(units::secondsToCycles(1.5, 1.0), 2u);
    EXPECT_EQ(units::secondsToCycles(2.0, 1.0), 2u);
    // 500 us at 610 MHz = 305000 cycles exactly.
    EXPECT_EQ(units::secondsToCycles(units::us(500), units::MHz(610)),
              305000u);
}

TEST(Units, CyclesToSecondsInvertsWholeCycles)
{
    double f = units::MHz(532);
    for (Tick c : {Tick{1}, Tick{1000}, Tick{123456789}}) {
        EXPECT_EQ(units::secondsToCycles(units::cyclesToSeconds(c, f), f),
                  c);
    }
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform())
            ++same;
    }
    EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 5);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(99);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / rate, 0.01);
}

TEST(Rng, NormalMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(3.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ForkIndependence)
{
    Rng a(1);
    Rng c = a.fork();
    // Forked stream differs from parent's subsequent output.
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == c.uniform())
            ++same;
    }
    EXPECT_LT(same, 5);
}

} // namespace
} // namespace equinox

/**
 * @file
 * Tests for the workload models and the tiling compiler.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace workload
{
namespace
{

sim::AcceleratorConfig
equinox500Like()
{
    sim::AcceleratorConfig cfg;
    cfg.n = 143;
    cfg.m = 4;
    cfg.w = 4;
    cfg.frequency_hz = units::MHz(610);
    return cfg;
}

TEST(DnnModel, LstmParametersAndOps)
{
    auto lstm = DnnModel::lstm2048();
    EXPECT_EQ(lstm.rnn.hidden, 2048u);
    EXPECT_EQ(lstm.rnn.steps, 25u);
    // 4 gates x H^2 parameters under the documented convention.
    EXPECT_EQ(lstm.paramCount(), 4ull * 2048 * 2048);
    // 2 ops x 4 gates x H^2 x 25 steps per request.
    EXPECT_DOUBLE_EQ(lstm.opsPerRequest(), 2.0 * 4 * 2048 * 2048 * 25);
}

TEST(DnnModel, GruStructure)
{
    auto gru = DnnModel::gru2816();
    EXPECT_EQ(gru.rnn.hidden, 2816u);
    EXPECT_EQ(gru.rnn.steps, 1500u);
    unsigned gates = 0;
    for (unsigned g : gru.rnn.gate_groups)
        gates += g;
    EXPECT_EQ(gates, 3u);
    EXPECT_EQ(gru.rnn.gate_groups.size(), 2u); // candidate serialises
}

TEST(DnnModel, Resnet50Structure)
{
    auto resnet = DnnModel::resnet50();
    // 1 stem + 16 bottlenecks x 3 convs + 4 projection shortcuts.
    EXPECT_EQ(resnet.cnn.layers.size(), 1u + 16 * 3 + 4);
    // Parameter count ~25.5M (conv + fc, no BN).
    EXPECT_NEAR(static_cast<double>(resnet.paramCount()), 25.5e6,
                2.5e6);
    // ~4 GMACs per image (He et al. report 3.8-4.1 GFLOPs x 2).
    EXPECT_NEAR(static_cast<double>(resnet.macsPerRequest()), 4.0e9,
                0.7e9);
}

TEST(Compiler, Mode1GemmInstructionCount)
{
    Compiler compiler(equinox500Like());
    // [143 x 2048] x [2048 x 2048]: ceil(2048/572)=4 k-chunks,
    // ceil(2048/572)=4 column chunks, one row chunk.
    auto insts = compiler.emitGemmMode1(143, 2048, 2048);
    EXPECT_EQ(insts.size(), 16u);
    // Edge tiles carry the remainders.
    std::uint64_t macs = 0;
    for (const auto &inst : insts) {
        EXPECT_LE(inst.k_valid, inst.k_slots);
        EXPECT_LE(inst.cols_valid, inst.cols_slots);
        macs += inst.realMacs();
    }
    EXPECT_EQ(macs, 143ull * 2048 * 2048);
}

TEST(Compiler, Mode2GemmInstructionCount)
{
    Compiler compiler(equinox500Like());
    // [2048 x 256] x [256 x 2048]: rows chunked by m*n=572 -> 4,
    // K=256 in one 572-slot chunk, cols chunked by n=143 -> 15.
    auto insts = compiler.emitGemmMode2(2048, 256, 2048);
    EXPECT_EQ(insts.size(), 4u * 1 * 15);
    std::uint64_t macs = 0;
    for (const auto &inst : insts)
        macs += inst.realMacs();
    EXPECT_EQ(macs, 2048ull * 256 * 2048);
}

TEST(Compiler, GemmCoversAllMacsProperty)
{
    Compiler compiler(equinox500Like());
    const std::size_t dims[][3] = {{1, 1, 1},     {7, 100, 13},
                                   {143, 572, 572}, {200, 2049, 95},
                                   {1000, 128, 64}};
    for (const auto &d : dims) {
        for (int mode = 1; mode <= 2; ++mode) {
            auto insts = mode == 1
                             ? compiler.emitGemmMode1(d[0], d[1], d[2])
                             : compiler.emitGemmMode2(d[0], d[1], d[2]);
            std::uint64_t macs = 0;
            for (const auto &inst : insts) {
                macs += inst.realMacs();
                EXPECT_GT(inst.k_valid, 0u);
                EXPECT_GT(inst.cols_valid, 0u);
                EXPECT_GT(inst.rows_real, 0u);
            }
            EXPECT_EQ(macs,
                      static_cast<std::uint64_t>(d[0]) * d[1] * d[2])
                << "mode " << mode << " dims " << d[0] << "x" << d[1]
                << "x" << d[2];
        }
    }
}

TEST(Compiler, LstmInferenceMatchesPaperServiceTime)
{
    // On the Equinox_500us-class design the LSTM service time must land
    // near the paper's 381-410 us (Table 1).
    Compiler compiler(equinox500Like());
    auto svc = compiler.compileInference(DnnModel::lstm2048());
    EXPECT_EQ(svc.program.steps.size(), 25u);
    EXPECT_EQ(svc.program.batch_rows, 143u);
    EXPECT_GT(svc.service_time_s, 350e-6);
    EXPECT_LT(svc.service_time_s, 450e-6);
    // 16 tile instructions x 4 gates per step.
    EXPECT_EQ(svc.program.totalInstructions(), 25u * 64);
    // Geometry efficiency ~0.8 gives the paper's 319-of-399 TOp/s.
    double geom = static_cast<double>(svc.program.totalRealOps()) /
                  (2.0 * 143 * 143 * 16 *
                   static_cast<double>(svc.program.mmuBusyCycles()));
    EXPECT_NEAR(geom, 0.80, 0.03);
}

TEST(Compiler, InferenceFootprintsFitBuffers)
{
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    for (const auto &model :
         {DnnModel::lstm2048(), DnnModel::gru2816(),
          DnnModel::resnet50()}) {
        auto svc = compiler.compileInference(model);
        EXPECT_LE(svc.weight_footprint, cfg.weight_buffer_bytes)
            << model.name;
        EXPECT_LE(svc.act_footprint, cfg.act_buffer_bytes) << model.name;
        EXPECT_GT(svc.service_time_s, 0.0);
    }
}

TEST(Compiler, GruHasTwoDependenceGroupsPerStep)
{
    Compiler compiler(equinox500Like());
    auto svc = compiler.compileInference(DnnModel::gru2816());
    EXPECT_EQ(svc.program.steps.size(), 1500u * 2);
}

TEST(Compiler, TrainingIterationStructure)
{
    Compiler compiler(equinox500Like());
    auto train = compiler.compileTraining(DnnModel::lstm2048(), 128);
    // fwd 25 + dgrad 25 + wgrad ceil(25/2)=13 windows.
    EXPECT_EQ(train.iteration.steps.size(), 25u + 25 + 13);
    EXPECT_FALSE(train.iteration.scale_rows_by_batch);
    EXPECT_EQ(train.iteration.batch_rows, 128u);
    // Every step streams operands from DRAM (staging-buffer execution).
    for (const auto &s : train.iteration.steps)
        EXPECT_GT(s.mmu.stream_bytes, 0u);
    EXPECT_GT(train.sync_bytes_per_iteration, 0u);
}

TEST(Compiler, TrainingIsDramHeavy)
{
    // The LSTM iteration's arithmetic intensity must land near the
    // calibrated ~110-120 ops/byte that caps training at ~107 TOp/s on
    // a 1 TB/s stack (Figure 9's ceiling).
    Compiler compiler(equinox500Like());
    auto train = compiler.compileTraining(DnnModel::lstm2048(), 128);
    double bytes = 0.0;
    for (const auto &s : train.iteration.steps)
        bytes += static_cast<double>(s.mmu.stream_bytes + s.store_bytes);
    double intensity =
        static_cast<double>(train.iteration.totalRealOps()) / bytes;
    EXPECT_GT(intensity, 90.0);
    EXPECT_LT(intensity, 150.0);
}

TEST(Compiler, TrainingOpsMatchAnalyticCount)
{
    Compiler compiler(equinox500Like());
    const std::size_t batch = 128;
    auto train = compiler.compileTraining(DnnModel::lstm2048(), batch);
    // fwd + dgrad + wgrad each perform batch x params MACs per step set.
    double expect = 3.0 * 2.0 *
                    static_cast<double>(
                        DnnModel::lstm2048().paramCount()) *
                    static_cast<double>(batch) * 25.0;
    EXPECT_NEAR(static_cast<double>(train.iteration.totalRealOps()),
                expect, expect * 1e-9);
}

TEST(Compiler, CnnInferenceUnderfillsRows)
{
    // Per-image lowering leaves deep-layer rows underfilled: ResNet50's
    // effective throughput is a small fraction of the LSTM's (Table 2).
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    auto lstm = compiler.compileInference(DnnModel::lstm2048());
    auto resnet = compiler.compileInference(DnnModel::resnet50());
    auto efficiency = [&](const sim::InferenceServiceDesc &svc) {
        return static_cast<double>(svc.program.totalRealOps()) /
               (2.0 * static_cast<double>(cfg.macsPerCycle()) *
                static_cast<double>(svc.program.mmuBusyCycles()));
    };
    EXPECT_LT(efficiency(resnet), 0.5 * efficiency(lstm));
}

TEST(Compiler, SimdCyclesCeiling)
{
    auto cfg = equinox500Like();
    cfg.simd_lanes = 100;
    Compiler compiler(cfg);
    EXPECT_EQ(compiler.simdCycles(100.0), 1u);
    EXPECT_EQ(compiler.simdCycles(101.0), 2u);
    EXPECT_EQ(compiler.simdCycles(0.0), 0u);
}

TEST(Compiler, BytesPerValueByEncoding)
{
    auto cfg = equinox500Like();
    cfg.encoding = arith::Encoding::Hbfp8;
    EXPECT_NEAR(Compiler(cfg).bytesPerValue(), 1.006, 0.01);
    cfg.encoding = arith::Encoding::Bfloat16;
    EXPECT_DOUBLE_EQ(Compiler(cfg).bytesPerValue(), 2.0);
}

} // namespace
} // namespace workload
} // namespace equinox

// Appended: randomized conservation properties of the compiler.

#include "common/random.hh"

namespace equinox
{
namespace workload
{
namespace
{

TEST(CompilerProperty, TrainingOpsScaleLinearlyWithBatch)
{
    Compiler compiler(equinox500Like());
    DnnModel tiny;
    tiny.name = "t";
    tiny.kind = DnnModel::Kind::Rnn;
    tiny.rnn.hidden = 256;
    tiny.rnn.steps = 3;
    tiny.rnn.gate_groups = {2};
    auto ops_at = [&](std::size_t batch) {
        return static_cast<double>(
            compiler.compileTraining(tiny, batch).iteration
                .totalRealOps());
    };
    EXPECT_NEAR(ops_at(64) / ops_at(32), 2.0, 1e-9);
    EXPECT_NEAR(ops_at(96) / ops_at(32), 3.0, 1e-9);
}

TEST(CompilerProperty, GeometryFractionBounded)
{
    // For random array geometries and GEMM dims, geom_frac must stay in
    // (0, 1] and real ops must be conserved exactly.
    Rng rng(13);
    for (int trial = 0; trial < 40; ++trial) {
        sim::AcceleratorConfig cfg;
        cfg.n = 1 + static_cast<unsigned>(rng.uniformInt(0, 40));
        cfg.m = 1 + static_cast<unsigned>(rng.uniformInt(0, 7));
        cfg.w = 1 + static_cast<unsigned>(rng.uniformInt(0, 7));
        cfg.frequency_hz = 1e8;
        Compiler compiler(cfg);
        std::size_t rows = 1 + rng.uniformInt(0, 99);
        std::size_t k = 1 + rng.uniformInt(0, 999);
        std::size_t cols = 1 + rng.uniformInt(0, 999);
        auto insts = compiler.emitGemmMode1(rows, k, cols);
        auto tw = isa::makeTileWork(insts, cfg.macsPerCycle(), 0);
        EXPECT_GT(tw.geom_frac, 0.0);
        EXPECT_LE(tw.geom_frac, 1.0 + 1e-12);
        EXPECT_EQ(tw.real_ops, 2ull * rows * k * cols);
        EXPECT_GT(tw.occupancy, 0u);
    }
}

TEST(CompilerProperty, ServiceTimeShrinksWithBiggerArrays)
{
    // More MACs per cycle at equal frequency can only speed a batch up.
    DnnModel model = DnnModel::lstm2048();
    double prev = 1e9;
    for (unsigned m : {1u, 2u, 4u, 8u}) {
        sim::AcceleratorConfig cfg;
        cfg.n = 143;
        cfg.m = m;
        cfg.w = 4;
        cfg.frequency_hz = 610e6;
        Compiler compiler(cfg);
        auto svc = compiler.compileInference(model);
        EXPECT_LT(svc.service_time_s, prev * 1.001) << "m=" << m;
        prev = svc.service_time_s;
    }
}

} // namespace
} // namespace workload
} // namespace equinox

/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace equinox
{
namespace sim
{
namespace
{

TEST(EventQueue, DispatchesInTickOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(7, [&order, i] { order.push_back(i); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, SameTickFifoAcrossScheduleVariants)
{
    // The FIFO tie-break keys on call order, not on which entry point
    // (schedule vs scheduleIn) or which tick-distance was used.
    EventQueue q;
    std::vector<int> order;
    q.schedule(1, [&] {}); // advance now() to 1 first
    q.runOne();
    q.schedule(9, [&] { order.push_back(0); });
    q.scheduleIn(8, [&] { order.push_back(1); }); // 1 + 8 == 9
    q.schedule(9, [&] { order.push_back(2); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, CurrentTickInsertionRunsAfterQueuedSameTick)
{
    // An event a callback schedules for the CURRENT tick must run after
    // every same-tick event that was already queued: sequence numbers
    // keep growing across dispatches, so later insertions sort later.
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(0);
        q.schedule(5, [&] { order.push_back(3); });
        q.scheduleIn(0, [&] { order.push_back(4); });
    });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventQueue, FifoSurvivesInterleavedFutureTicks)
{
    // Interleaving insertions for different ticks must not disturb the
    // per-tick FIFO: ordering is (tick, global insertion order).
    EventQueue q;
    std::vector<int> order;
    q.schedule(20, [&] { order.push_back(20); });
    q.schedule(10, [&] { order.push_back(10); });
    q.schedule(20, [&] { order.push_back(21); });
    q.schedule(10, [&] { order.push_back(11); });
    q.schedule(20, [&] { order.push_back(22); });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 22}));
}

TEST(EventQueue, CallbacksCanSchedule)
{
    EventQueue q;
    int fired = 0;
    q.schedule(1, [&] {
        ++fired;
        q.scheduleIn(5, [&] { ++fired; });
    });
    while (q.runOne()) {
    }
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(q.now(), 6u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(15, [&] { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(20);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenEmpty)
{
    EventQueue q;
    q.runUntil(42);
    EXPECT_EQ(q.now(), 42u);
}

TEST(EventQueue, CountsDispatched)
{
    EventQueue q;
    for (int i = 0; i < 10; ++i)
        q.schedule(i, [] {});
    while (q.runOne()) {
    }
    EXPECT_EQ(q.dispatched(), 10u);
}

TEST(EventQueueDeath, SchedulingIntoPastPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runOne();
    EXPECT_DEATH(q.schedule(5, [] {}), "scheduling into the past");
}

} // namespace
} // namespace sim
} // namespace equinox

// Appended: randomized stress of the event kernel.

#include "common/random.hh"

namespace equinox
{
namespace sim
{
namespace
{

TEST(EventQueueProperty, RandomScheduleDispatchesInOrder)
{
    Rng rng(17);
    EventQueue q;
    Tick last_seen = 0;
    bool violated = false;
    int scheduled = 0;
    // Seed events; each callback may schedule more into the future.
    for (int i = 0; i < 200; ++i)
        q.schedule(rng.uniformInt(0, 10000), [&, i] {
            if (q.now() < last_seen)
                violated = true;
            last_seen = q.now();
            if (scheduled < 5000 && rng.uniform() < 0.4) {
                ++scheduled;
                q.scheduleIn(rng.uniformInt(0, 500) + 1, [&] {
                    if (q.now() < last_seen)
                        violated = true;
                    last_seen = q.now();
                });
            }
        });
    while (q.runOne()) {
    }
    EXPECT_FALSE(violated);
    EXPECT_GE(q.dispatched(), 200u);
}

} // namespace
} // namespace sim
} // namespace equinox

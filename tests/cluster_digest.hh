/**
 * @file
 * Digest folds for the cluster layer, layered on the shared
 * sim_digest.hh machinery. test_cluster_differential compares these
 * against the single-accelerator folds (1-replica byte-identity) and
 * against themselves across jobs counts (parallel fan-out identity),
 * so every field of a ClusterPointResult folds here in a fixed order.
 */

#ifndef EQUINOX_TESTS_CLUSTER_DIGEST_HH
#define EQUINOX_TESTS_CLUSTER_DIGEST_HH

#include "cluster/cluster.hh"
#include "sim_digest.hh"

namespace equinox
{
namespace testutil
{

/** Fold the fleet-tier slice of a point (shards + autoscaler). */
inline void
foldFleetFields(ResultDigest &dg, const cluster::ClusterPointResult &r)
{
    dg.u64(r.shards);
    dg.u64(static_cast<std::uint64_t>(r.shard_policy));
    dg.u64(r.shard_rerouted);
    for (const auto &sh : r.per_shard) {
        dg.u64(sh.shard);
        dg.u64(sh.first_replica);
        dg.u64(sh.replicas);
        dg.u64(sh.assigned_candidates);
        dg.u64(sh.completed_requests);
        dg.u64(sh.merged_latency_cycles.count());
        dg.d(sh.merged_latency_cycles.mean());
        dg.d(sh.p99_latency_s);
        dg.u64(sh.faults.totalFaults());
        dg.u64(sh.faults.downtime_cycles);
    }
    dg.u64(r.autoscaled ? 1 : 0);
    dg.u64(r.autoscaler.decisions);
    dg.u64(r.autoscaler.scale_ups);
    dg.u64(r.autoscaler.scale_downs);
    dg.u64(r.autoscaler.min_active);
    dg.u64(r.autoscaler.max_active);
    dg.u64(r.autoscaler.final_active);
    dg.d(r.autoscaler.active_replica_ticks);
    dg.d(r.autoscaler.needed_replica_ticks);
    dg.d(r.autoscaler.over_provisioned_ticks);
    dg.d(r.autoscaler.over_provision_frac);
    dg.u64(r.autoscaler.transitions.size());
    for (const auto &tr : r.autoscaler.transitions) {
        dg.u64(tr.first);
        dg.u64(tr.second);
    }
}

/** Fold one cluster point: router, aggregates, merge, per-replica. */
inline void
foldClusterPoint(ResultDigest &dg, const cluster::ClusterPointResult &r)
{
    dg.d(r.load);
    dg.u64(r.replicas);
    dg.u64(static_cast<std::uint64_t>(r.policy));
    dg.u64(r.generated_candidates);
    dg.u64(r.router_shed);
    dg.u64(r.rerouted);
    dg.d(r.aggregate_inference_ops);
    dg.d(r.aggregate_training_ops);
    dg.d(r.aggregate_inference_tops);
    dg.d(r.aggregate_training_tops);
    dg.u64(r.completed_requests);
    dg.u64(r.training_iterations);
    dg.u64(r.committed_training_iterations);
    dg.u64(r.merged_latency_cycles.count());
    dg.d(r.merged_latency_cycles.mean());
    dg.d(r.mean_latency_s);
    dg.d(r.p50_latency_s);
    dg.d(r.p99_latency_s);
    dg.d(r.max_latency_s);
    dg.u64(r.admitted_requests);
    dg.u64(r.retired_requests);
    dg.u64(r.inflight_requests);
    dg.u64(r.shed_requests);
    dg.u64(r.faults.totalFaults());
    dg.u64(r.faults.recoveryEvents());
    dg.u64(r.faults.downtime_cycles);
    dg.u64(r.outage_cycles);
    dg.d(r.availability);
    dg.u64(r.control_plane ? 1 : 0);
    dg.u64(r.resilience.admission.offered);
    dg.u64(r.resilience.admission.offered_background);
    dg.u64(r.resilience.admission.admitted);
    dg.u64(r.resilience.admission.shed_rate_limited);
    dg.u64(r.resilience.admission.shed_queue);
    dg.u64(r.resilience.admission.shed_background);
    dg.u64(r.resilience.admission.shed_inference);
    dg.u64(r.resilience.admission.deadline_missed);
    dg.u64(r.resilience.dispatched);
    dg.u64(r.resilience.dispatched_background);
    dg.u64(r.resilience.retry_attempts);
    dg.u64(r.resilience.retry_recovered);
    dg.u64(r.resilience.retry_shed);
    dg.u64(r.resilience.retry_budget_exhausted);
    dg.u64(r.resilience.outage_shed);
    dg.u64(r.resilience.breaker_denials);
    dg.u64(r.resilience.hedges_issued);
    dg.u64(r.resilience.hedge_wins);
    dg.u64(r.resilience.breaker_opens);
    dg.u64(r.resilience.breaker_reopens);
    dg.u64(r.resilience.breaker_closes);
    dg.u64(r.resilience.shed_background_total);
    dg.u64(r.resilience.shed_inference_total);
    dg.u64(r.resilience.overload_candidates);
    dg.u64(r.resilience.training_replicas_shed);
    dg.d(r.request_availability);
    dg.d(r.inference_availability);
    dg.u64(r.deadline_met);
    dg.d(r.goodput_rps);
    // Fleet-tier fields fold only when the tier routed the point:
    // flat-path digests (and their golden constants) stay exactly what
    // they were before the fleet layer existed.
    if (r.shards > 0 || r.autoscaled) {
        foldFleetFields(dg, r);
    }
    for (const auto &rep : r.per_replica) {
        dg.u64(rep.replica);
        dg.u64(rep.assigned_candidates);
        dg.u64(rep.training ? 1 : 0);
        foldSim(dg, rep.sim);
        dg.u64(rep.sim.admitted_requests);
        dg.u64(rep.sim.retired_requests);
        dg.u64(rep.sim.inflight_requests);
        dg.u64(rep.sim.latency_cycles.count());
    }
}

inline std::uint64_t
digestOf(const cluster::ClusterPointResult &r)
{
    ResultDigest dg;
    foldClusterPoint(dg, r);
    return dg.value();
}

inline std::uint64_t
digestOf(const std::vector<cluster::ClusterPointResult> &rs)
{
    ResultDigest dg;
    dg.u64(rs.size());
    for (const auto &r : rs)
        foldClusterPoint(dg, r);
    return dg.value();
}

} // namespace testutil
} // namespace equinox

#endif // EQUINOX_TESTS_CLUSTER_DIGEST_HH

/**
 * @file
 * Golden-baseline identity tests for the block/port simulator refactor.
 *
 * Each scenario runs a small mixed inference+training workload and folds
 * every field of the SimResult -- including the full fault trace -- into
 * one FNV-1a digest over exact bit patterns (tests/sim_digest.hh). The
 * golden constants were recorded from the pre-refactor monolithic
 * simulator (commit "fault-injection and recovery subsystem"); the
 * decomposed simulator must reproduce them bit-for-bit for identical
 * seeds and configs.
 *
 * A digest mismatch means the refactor changed behaviour: event
 * insertion order, an RNG draw, or a floating-point accumulation order
 * moved. Fix the refactor, do not re-record the constants, unless a PR
 * deliberately changes simulated behaviour (then re-record and say so).
 */

#include <gtest/gtest.h>

#include "sim_digest.hh"

namespace equinox
{
namespace sim
{
namespace
{

using testutil::digestOf;
using testutil::runScenario;

TEST(RefactorIdentity, FaultFreePriorityScheduler)
{
    auto res = runScenario(SchedPolicy::Priority, {});
    EXPECT_EQ(res.faults.totalFaults(), 0u);
    EXPECT_EQ(digestOf(res), testutil::kGoldenFaultFreePriority);
}

TEST(RefactorIdentity, FaultFreeFairShareScheduler)
{
    auto res = runScenario(SchedPolicy::FairShare, {});
    EXPECT_EQ(digestOf(res), testutil::kGoldenFaultFreeFairShare);
}

TEST(RefactorIdentity, ActiveFaultPlan)
{
    // The plan from FaultDeterminism: dense enough that ECC corrections,
    // host drops with retries, hangs, watchdog resets and rollbacks all
    // occur inside the short run.
    auto res = runScenario(SchedPolicy::Priority, testutil::densePlan());
    EXPECT_GT(res.faults.totalFaults(), 0u);
    EXPECT_GT(res.fault_trace.size(), 0u);
    EXPECT_EQ(digestOf(res), testutil::kGoldenActiveFaultPlan);
}

TEST(RefactorIdentity, TrainingOnlyRun)
{
    auto res = testutil::runTrainingOnly();
    EXPECT_EQ(res.training_iterations, 25u);
    EXPECT_EQ(digestOf(res), testutil::kGoldenTrainingOnly);
}

} // namespace
} // namespace sim
} // namespace equinox

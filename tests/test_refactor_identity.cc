/**
 * @file
 * Golden-baseline identity tests for the block/port simulator refactor.
 *
 * Each scenario runs a small mixed inference+training workload and folds
 * every field of the SimResult -- including the full fault trace -- into
 * one FNV-1a digest over exact bit patterns. The golden constants below
 * were recorded from the pre-refactor monolithic simulator (commit
 * "fault-injection and recovery subsystem"); the decomposed simulator
 * must reproduce them bit-for-bit for identical seeds and configs.
 *
 * A digest mismatch means the refactor changed behaviour: event
 * insertion order, an RNG draw, or a floating-point accumulation order
 * moved. Fix the refactor, do not re-record the constants, unless a PR
 * deliberately changes simulated behaviour (then re-record and say so).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace sim
{
namespace
{

/** FNV-1a over the exact bit patterns of the accumulated fields. */
class ResultDigest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 14695981039346656037ull;
};

/** Fold every SimResult field, in a fixed documented order. */
std::uint64_t
digestOf(const SimResult &r)
{
    ResultDigest dg;
    dg.d(r.sim_seconds);
    dg.u64(r.completed_requests);
    dg.d(r.offered_rate_per_s);
    dg.d(r.inference_throughput_ops);
    dg.d(r.training_throughput_ops);
    dg.d(r.mean_latency_s);
    dg.d(r.p50_latency_s);
    dg.d(r.p99_latency_s);
    dg.d(r.max_latency_s);
    dg.d(r.mean_service_s);
    for (unsigned c = 0;
         c < static_cast<unsigned>(stats::CycleClass::NumClasses); ++c)
        dg.d(r.mmu_breakdown.get(static_cast<stats::CycleClass>(c)));
    dg.u64(r.batches_formed);
    dg.u64(r.batches_incomplete);
    dg.d(r.avg_batch_fill);
    dg.d(r.dram_utilization);
    dg.u64(r.dram_train_bytes);
    dg.u64(r.host_bytes);
    dg.u64(r.training_iterations);
    dg.d(r.mmu_busy_cycles);
    dg.d(r.simd_busy_cycles);
    for (const auto &s : r.per_service) {
        dg.u64(s.ctx);
        dg.u64(s.completed);
        dg.d(s.mean_latency_s);
        dg.d(s.p99_latency_s);
    }
    dg.u64(r.faults.dram_corrected);
    dg.u64(r.faults.dram_uncorrectable);
    dg.u64(r.faults.host_drops);
    dg.u64(r.faults.host_corruptions);
    dg.u64(r.faults.mmu_hangs);
    dg.u64(r.faults.host_retries);
    dg.u64(r.faults.host_give_ups);
    dg.u64(r.faults.watchdog_resets);
    dg.u64(r.faults.checkpoints_written);
    dg.u64(r.faults.rollbacks);
    dg.u64(r.faults.lost_training_iterations);
    dg.u64(r.faults.shed_requests);
    dg.u64(r.faults.storms_entered);
    dg.u64(r.faults.downtime_cycles);
    dg.u64(r.faults.recovery_cycles.count());
    dg.d(r.faults.recovery_cycles.mean());
    dg.d(r.faults.recovery_cycles.max());
    dg.d(r.availability);
    dg.u64(r.committed_training_iterations);
    for (const auto &f : r.fault_trace) {
        dg.u64(f.tick);
        dg.u64(static_cast<std::uint64_t>(f.kind));
        dg.u64(f.bytes);
    }
    return dg.value();
}

/** The small test design the simulator tests share: n=8 m=2 w=2. */
AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "identity";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/** Mixed inference+training run shared by the scenarios below. */
SimResult
runScenario(SchedPolicy policy, const fault::FaultPlan &faults)
{
    auto cfg = smallConfig();
    cfg.sched_policy = policy;
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.seed = 17;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.faults = faults;
    return accel.run(spec);
}

TEST(RefactorIdentity, FaultFreePriorityScheduler)
{
    auto res = runScenario(SchedPolicy::Priority, {});
    EXPECT_EQ(res.faults.totalFaults(), 0u);
    EXPECT_EQ(digestOf(res), 9598426128261729103ull);
}

TEST(RefactorIdentity, FaultFreeFairShareScheduler)
{
    auto res = runScenario(SchedPolicy::FairShare, {});
    EXPECT_EQ(digestOf(res), 3136427541025947968ull);
}

TEST(RefactorIdentity, ActiveFaultPlan)
{
    // The plan from FaultDeterminism: dense enough that ECC corrections,
    // host drops with retries, hangs, watchdog resets and rollbacks all
    // occur inside the short run.
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.dram_bit_error_rate = 1e-7;
    plan.host_drop_prob = 0.05;
    plan.mmu_hang_rate_per_s = 200.0;
    auto res = runScenario(SchedPolicy::Priority, plan);
    EXPECT_GT(res.faults.totalFaults(), 0u);
    EXPECT_GT(res.fault_trace.size(), 0u);
    EXPECT_EQ(digestOf(res), 7691949600349461230ull);
}

TEST(RefactorIdentity, TrainingOnlyRun)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 25;
    spec.seed = 5;
    auto res = accel.run(spec);
    EXPECT_EQ(res.training_iterations, 25u);
    EXPECT_EQ(digestOf(res), 15216487330587529517ull);
}

} // namespace
} // namespace sim
} // namespace equinox

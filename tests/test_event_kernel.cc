/**
 * @file
 * Property suite for the event-kernel hot path: the small-buffer
 * Callback, the batched same-tick dispatch FIFO, and the reserved
 * min-heap. These pin the (tick, insertion-order) contract the golden
 * identity digests stand on, under exactly the access patterns the
 * batched kernel optimizes -- current-tick self-scheduling,
 * interleaved schedule()/scheduleIn(), pool reuse across drained
 * ticks -- plus a seeded 10k-event fuzz against a straightforward
 * priority-queue reference model.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/min_heap.hh"
#include "common/random.hh"
#include "sim/event_queue.hh"

namespace equinox
{
namespace sim
{
namespace
{

// ---------------------------------------------------------------- SBO

TEST(Callback, SmallTrivialCapturesStayInline)
{
    int sink = 0;
    int *p = &sink;
    Callback cb([p] { *p = 42; });
    EXPECT_TRUE(cb.inlineStored());
    cb();
    EXPECT_EQ(sink, 42);
}

TEST(Callback, CaptureAtTheInlineLimitStaysInline)
{
    // 32 bytes of trivially copyable capture: exactly Callback's
    // buffer. The hot block-layer closures (this + a couple of
    // operands) are well under this.
    std::uint64_t sink = 0;
    struct Fat
    {
        std::uint64_t *out;
        std::uint64_t a, b, c;
    } fat{&sink, 1, 2, 3};
    static_assert(sizeof(Fat) == 32, "limit probe must be 32 bytes");
    Callback cb([fat] { *fat.out = fat.a + fat.b + fat.c; });
    EXPECT_TRUE(cb.inlineStored());
    cb();
    EXPECT_EQ(sink, 6u);
}

TEST(Callback, OversizedCapturesFallBackToHeapAndStillRun)
{
    std::uint64_t sink = 0;
    std::array<std::uint64_t, 8> big{1, 2, 3, 4, 5, 6, 7, 8};
    Callback cb([&sink, big] {
        for (auto v : big)
            sink += v;
    });
    EXPECT_FALSE(cb.inlineStored());
    cb();
    EXPECT_EQ(sink, 36u);
}

TEST(Callback, NonTrivialCapturesFallBackToHeap)
{
    // A std::vector capture is small but not trivially copyable, so it
    // must take the owning heap path and destroy exactly once.
    auto counter = std::make_shared<int>(0);
    {
        Callback cb([counter] { ++*counter; });
        EXPECT_FALSE(cb.inlineStored());
        cb();
        Callback moved = std::move(cb);
        moved();
    }
    EXPECT_EQ(*counter, 2);
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(Callback, MoveTransfersTheInlineBuffer)
{
    int sink = 0;
    int *p = &sink;
    Callback a([p] { ++*p; });
    Callback b = std::move(a);
    EXPECT_FALSE(a);
    ASSERT_TRUE(b);
    b();
    EXPECT_EQ(sink, 1);
}

// ------------------------------------------- batched same-tick FIFO

TEST(EventKernel, CurrentTickSelfSchedulingPreservesFifo)
{
    // Handlers that schedule at now() while their tick is being
    // drained must run this tick, after everything already queued --
    // the append lands in the open FIFO, not back in the heap.
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
        order.push_back(0);
        q.schedule(5, [&] { order.push_back(3); });
    });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] {
        order.push_back(2);
        q.schedule(5, [&] { order.push_back(4); });
    });
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(q.now(), 5u);
}

TEST(EventKernel, ChainedSelfSchedulingDrainsBeforeAdvancing)
{
    // A self-scheduling chain at the current tick runs to completion
    // before the queue moves to the next tick.
    EventQueue q;
    std::vector<std::pair<Tick, int>> seen;
    int depth = 0;
    std::function<void()> chain = [&] {
        seen.emplace_back(q.now(), depth);
        if (++depth < 4)
            q.schedule(q.now(), [&] { chain(); });
    };
    q.schedule(2, [&] { chain(); });
    q.schedule(3, [&] { seen.emplace_back(q.now(), 99); });
    while (q.runOne()) {
    }
    ASSERT_EQ(seen.size(), 5u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(seen[i].first, 2u);
        EXPECT_EQ(seen[i].second, i);
    }
    EXPECT_EQ(seen[4], (std::pair<Tick, int>{3, 99}));
}

TEST(EventKernel, InterleavedScheduleAndScheduleInAgree)
{
    // scheduleIn(delta) is schedule(now + delta); interleaving the two
    // on the same target tick must honour global insertion order.
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] {
        order.push_back(0);
        q.scheduleIn(0, [&] { order.push_back(2); });
        q.schedule(10, [&] { order.push_back(3); });
        q.scheduleIn(5, [&] { order.push_back(5); });
        q.schedule(15, [&] { order.push_back(6); });
    });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(4); });
    while (q.runOne()) {
    }
    // The three entries scheduled before the run opened tick 10 run in
    // their insertion order (0, 1, 4); the followups appended while
    // tick 10 was open run after them (2, 3); then the two tick-15
    // entries in insertion order (5, 6).
    EXPECT_EQ(order, (std::vector<int>{0, 1, 4, 2, 3, 5, 6}));
}

TEST(EventKernel, FifoPoolIsReusedAcrossTicks)
{
    // Draining a tick must not free the FIFO's storage: a steady-state
    // run recycles one allocation instead of growing per tick. The
    // heap side is pinned the same way via reserve().
    EventQueue q;
    const int kTicks = 200, kPerTick = 32;
    q.reserve(kTicks); // the pre-loaded tick grid is the high water
    int ran = 0;
    for (int t = 1; t <= kTicks; ++t)
        q.schedule(static_cast<Tick>(t), [&] {
            ++ran;
            // Same-tick followup exercises the open-FIFO append.
            if (ran % kPerTick == 0)
                q.schedule(q.now(), [&] { ++ran; });
        });
    while (q.runOne()) {
    }
    EXPECT_EQ(ran, kTicks + kTicks / kPerTick);
    EXPECT_EQ(q.heapReallocations(), 0u);
    EXPECT_LE(q.highWater(), static_cast<std::size_t>(kTicks));
}

TEST(EventKernel, ReserveFromHighWaterPinsTheNextRun)
{
    // The Accelerator's cross-run contract: reserving a previous run's
    // highWater() makes the identical next run allocation-free.
    auto load = [](EventQueue &q, std::size_t reserve) {
        q.reserve(reserve);
        Rng rng(11);
        for (int i = 0; i < 500; ++i)
            q.schedule(rng.uniformInt(0, 4096), [] {});
        while (q.runOne()) {
        }
    };
    EventQueue first;
    load(first, 0);
    ASSERT_GT(first.highWater(), 0u);
    EventQueue second;
    load(second, first.highWater());
    EXPECT_EQ(second.heapReallocations(), 0u);
    EXPECT_EQ(second.highWater(), first.highWater());
}

// ------------------------------------------------------ 10k-event fuzz

/** Straight-line reference model: one ordered priority queue. */
class ModelQueue
{
  public:
    void
    schedule(Tick when, std::function<void()> fn)
    {
        heap_.push(Entry{when, seq_++, std::move(fn)});
    }

    Tick now() const { return now_; }

    bool
    runOne()
    {
        if (heap_.empty())
            return false;
        Entry e = std::move(const_cast<Entry &>(heap_.top()));
        heap_.pop();
        now_ = e.when;
        e.fn();
        return true;
    }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;
    };
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };
    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
};

/**
 * Drive a randomized workload -- future schedules, current-tick
 * followups, short chains -- through either queue and record the
 * (tick, id) dispatch sequence.
 */
template <typename Queue>
std::vector<std::pair<Tick, int>>
fuzzRun(Queue &q, std::uint64_t seed, int seeds_count)
{
    std::vector<std::pair<Tick, int>> log;
    Rng rng(seed);
    int next_id = 0;
    // Handlers draw follow-up decisions from their own counter stream
    // so both queues see the identical schedule sequence.
    std::function<void(int, int)> fire = [&](int id, int budget) {
        log.emplace_back(q.now(), id);
        if (budget <= 0)
            return;
        std::uint64_t h = static_cast<std::uint64_t>(id) * 2654435761u;
        if (h % 3 == 0) {
            int cid = next_id++;
            q.schedule(q.now(), [&fire, cid, budget] {
                fire(cid, budget - 1);
            });
        }
        if (h % 5 == 0) {
            int cid = next_id++;
            Tick delta = 1 + h % 97;
            q.schedule(q.now() + delta, [&fire, cid, budget] {
                fire(cid, budget - 1);
            });
        }
    };
    for (int i = 0; i < seeds_count; ++i) {
        int id = next_id++;
        Tick when = rng.uniformInt(0, 1 << 14);
        q.schedule(when, [&fire, id] { fire(id, 3); });
    }
    while (q.runOne()) {
    }
    return log;
}

TEST(EventKernel, FuzzMatchesReferenceModel)
{
    for (std::uint64_t seed : {1ull, 29ull, 8191ull}) {
        EventQueue real;
        ModelQueue model;
        auto got = fuzzRun(real, seed, 10000);
        auto want = fuzzRun(model, seed, 10000);
        ASSERT_GE(got.size(), 10000u);
        ASSERT_EQ(got.size(), want.size()) << "seed " << seed;
        EXPECT_EQ(got, want) << "seed " << seed;
    }
}

// ------------------------------------------------- ReservedMinHeap

TEST(ReservedMinHeap, OrdersByComparatorWithSeqTiebreak)
{
    struct Ev
    {
        Tick t;
        std::uint64_t seq;
    };
    struct Later
    {
        bool
        operator()(const Ev &a, const Ev &b) const
        {
            if (a.t != b.t)
                return a.t > b.t;
            return a.seq > b.seq;
        }
    };
    ReservedMinHeap<Ev, Later> heap;
    heap.reserve(8);
    heap.push({30, 0});
    heap.push({10, 1});
    heap.push({10, 2});
    heap.push({20, 3});
    std::vector<std::uint64_t> seqs;
    while (!heap.empty())
        seqs.push_back(heap.pop().seq);
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{1, 2, 3, 0}));
    EXPECT_EQ(heap.reallocations(), 0u);
    EXPECT_EQ(heap.highWater(), 4u);
}

TEST(ReservedMinHeap, CountsReallocationsWhenUnderReserved)
{
    struct Less
    {
        bool operator()(int a, int b) const { return a > b; }
    };
    ReservedMinHeap<int, Less> heap;
    for (int i = 0; i < 100; ++i)
        heap.push(i);
    EXPECT_GT(heap.reallocations(), 0u);
    EXPECT_EQ(heap.highWater(), 100u);
}

} // namespace
} // namespace sim
} // namespace equinox

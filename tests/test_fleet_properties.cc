/**
 * @file
 * Property tests for the fleet tier (hierarchical sharded routing,
 * SLO autoscaling, traffic mixes).
 *
 * The heart is two randomized sweeps:
 *
 *  - 44 seeded FleetRouter configurations drawn over replica count,
 *    shard count, both policy tiers, outages, surges and autoscaler
 *    knobs, checked against invariants that must hold for EVERY fleet:
 *    request conservation, strictly increasing per-replica traces,
 *    balanced contiguous shard partitioning, autoscaler bounds and
 *    cooldown hysteresis (no flapping inside the cooldown), ever-active
 *    consistency, and exact replay determinism,
 *
 *  - 12 full Cluster runs through the hierarchy, checking that shard
 *    accounting conserves requests (fleet == sum over shards == sum
 *    over replicas) and that per-shard latency merges reproduce the
 *    fleet-level percentiles bitwise (the exact-merge contract at one
 *    more level of hierarchy).
 *
 * Around them sit deterministic tests of autoscaler reaction to a
 * flash crowd, monotone aggregate throughput in replica count, the
 * traffic-mix factor algebra, and fleet spec validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/cluster.hh"
#include "cluster/fleet.hh"
#include "cluster/router.hh"
#include "cluster_digest.hh"
#include "common/random.hh"
#include "core/experiment.hh"
#include "fault/traffic_mix.hh"

namespace equinox
{
namespace
{

core::ExperimentOptions
baseOptions()
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 200;
    opts.seed = 17;
    opts.max_sim_s = 0.01;
    return opts;
}

// ---------------------------------------------------------------------
// Randomized FleetRouter sweep: routing-layer invariants over 44
// seeded configurations (no simulation behind them, so this is cheap
// enough to also replay every config for determinism).

struct DrawnFleet
{
    cluster::FleetRouter::Config cfg;
    std::vector<cluster::RouterOutage> outages;
    std::vector<cluster::RouterSurge> surges;
    double rate_per_cycle = 0.0;
    std::uint64_t seed = 0;
    Tick horizon = 0;
};

DrawnFleet
drawFleet(Rng &meta, std::size_t index)
{
    DrawnFleet d;
    auto policies = cluster::allRoutingPolicies();
    d.cfg.replicas = 2 + meta.uniformInt(0, 46);
    d.cfg.shards =
        1 + meta.uniformInt(0, std::min<std::size_t>(
                                   d.cfg.replicas, 8) -
                                   1);
    d.cfg.replica_policy =
        policies[meta.uniformInt(0, policies.size() - 1)];
    d.cfg.shard_policy =
        policies[meta.uniformInt(0, policies.size() - 1)];
    d.cfg.service_rate_per_cycle = meta.uniform(5e-5, 5e-4);
    d.cfg.latency_window = 1 + meta.uniformInt(0, 31);

    d.horizon = 100000 + meta.uniformInt(0, 200000);
    // Aggregate rate from light to overload of the whole fleet.
    d.rate_per_cycle = meta.uniform(0.1, 1.2) *
                       d.cfg.service_rate_per_cycle *
                       static_cast<double>(d.cfg.replicas);
    d.seed = 1000 + index;

    if (meta.uniform() < 0.4) {
        std::size_t outages = 1 + meta.uniformInt(0, 2);
        for (std::size_t i = 0; i < outages; ++i) {
            Tick from = meta.uniformInt(0, d.horizon / 2);
            d.outages.push_back(
                {meta.uniformInt(0, d.cfg.replicas - 1), from,
                 from + 1 + meta.uniformInt(0, d.horizon / 4)});
        }
    }
    if (meta.uniform() < 0.35) {
        Tick from = meta.uniformInt(0, d.horizon / 2);
        d.surges.push_back({from,
                            from + 1 + meta.uniformInt(0, d.horizon / 3),
                            meta.uniform(1.5, 5.0)});
    }
    if (meta.uniform() < 0.5) {
        d.cfg.autoscale = true;
        d.cfg.min_active = 1 + meta.uniformInt(0, d.cfg.replicas / 2);
        d.cfg.max_active =
            d.cfg.min_active +
            meta.uniformInt(0, d.cfg.replicas - d.cfg.min_active);
        d.cfg.initial_active =
            d.cfg.min_active +
            meta.uniformInt(0, d.cfg.max_active - d.cfg.min_active);
        d.cfg.target_p99_cycles = meta.uniform(1e3, 1e6);
        d.cfg.decision_interval = 500 + meta.uniformInt(0, 4000);
        d.cfg.cooldown = meta.uniformInt(0, 3) * d.cfg.decision_interval;
        d.cfg.warmup = meta.uniformInt(0, 2000);
        d.cfg.estimate_window = 16 + meta.uniformInt(0, 240);
        d.cfg.min_samples = 1 + meta.uniformInt(0, 31);
    }
    return d;
}

TEST(FleetProperties, RandomFleetsUpholdRoutingInvariants)
{
    Rng meta(20260808);
    const int kConfigs = 44;
    for (int i = 0; i < kConfigs; ++i) {
        DrawnFleet d = drawFleet(meta, static_cast<std::size_t>(i));
        SCOPED_TRACE(::testing::Message()
                     << "fleet " << i << ": replicas " << d.cfg.replicas
                     << " shards " << d.cfg.shards << " autoscale "
                     << d.cfg.autoscale << " rate " << d.rate_per_cycle);

        cluster::FleetRouter fr(d.cfg, d.outages);
        cluster::RouterResult r =
            fr.route(d.rate_per_cycle, d.seed, d.horizon, d.surges);

        // Balanced contiguous partition: sizes differ by at most one,
        // bases tile [0, replicas), shardOf inverts the bases.
        ASSERT_EQ(fr.shardCount(), d.cfg.shards);
        std::size_t covered = 0;
        for (std::size_t s = 0; s < fr.shardCount(); ++s) {
            EXPECT_EQ(fr.shardBase(s), covered);
            std::size_t sz = fr.shardSize(s);
            EXPECT_GE(sz, d.cfg.replicas / d.cfg.shards);
            EXPECT_LE(sz, d.cfg.replicas / d.cfg.shards + 1);
            for (std::size_t k = 0; k < sz; ++k)
                EXPECT_EQ(fr.shardOf(covered + k), s);
            covered += sz;
        }
        EXPECT_EQ(covered, d.cfg.replicas);

        // Request conservation: every candidate assigned once or shed.
        std::uint64_t assigned = 0;
        ASSERT_EQ(r.traces.size(), d.cfg.replicas);
        ASSERT_EQ(r.assigned.size(), d.cfg.replicas);
        for (std::size_t rep = 0; rep < d.cfg.replicas; ++rep) {
            EXPECT_EQ(r.assigned[rep], r.traces[rep].size());
            assigned += r.assigned[rep];
            for (std::size_t k = 1; k < r.traces[rep].size(); ++k)
                ASSERT_LT(r.traces[rep][k - 1], r.traces[rep][k])
                    << "replica " << rep;
            // Routed work implies the replica was provisioned at some
            // point (trivially true without the autoscaler).
            if (r.assigned[rep] > 0) {
                EXPECT_TRUE(fr.everActive(rep)) << "replica " << rep;
            }
        }
        EXPECT_EQ(r.generated, assigned + r.shed);
        // Shard-level re-routes are a subset of all re-routes.
        EXPECT_LE(fr.shardRerouted(), r.rerouted);
        if (d.outages.empty() && !d.cfg.autoscale) {
            EXPECT_EQ(r.shed, 0u);
        }

        const cluster::AutoscalerStats &st = fr.autoscalerStats();
        if (d.cfg.autoscale) {
            std::size_t lo = d.cfg.min_active;
            std::size_t hi = d.cfg.max_active;
            // The provisioned envelope stays inside [min, max].
            EXPECT_GE(st.min_active, lo);
            EXPECT_LE(st.max_active, hi);
            EXPECT_GE(st.final_active, lo);
            EXPECT_LE(st.final_active, hi);
            EXPECT_EQ(st.scale_ups + st.scale_downs,
                      st.transitions.size());
            // Hysteresis: no flapping inside the cooldown. Every pair
            // of consecutive actions is at least a cooldown apart.
            for (std::size_t k = 0; k < st.transitions.size(); ++k) {
                EXPECT_GE(st.transitions[k].second, lo);
                EXPECT_LE(st.transitions[k].second, hi);
                if (k > 0) {
                    EXPECT_GE(st.transitions[k].first,
                              st.transitions[k - 1].first +
                                  d.cfg.cooldown)
                        << "actions " << k - 1 << " and " << k
                        << " flapped inside the cooldown";
                    EXPECT_NE(st.transitions[k].second,
                              st.transitions[k - 1].second)
                        << "action " << k << " changed nothing";
                }
            }
            // Integral accounting: over-provisioning is a fraction of
            // provisioned capacity.
            EXPECT_GE(st.active_replica_ticks, 0.0);
            EXPECT_LE(st.over_provisioned_ticks,
                      st.active_replica_ticks + 1e-9);
            EXPECT_GE(st.over_provision_frac, 0.0);
            EXPECT_LE(st.over_provision_frac, 1.0);
        } else {
            EXPECT_TRUE(st.transitions.empty());
            EXPECT_EQ(st.decisions, 0u);
        }

        // Exact replay: the whole routed stream is a pure function of
        // (config, outages, rate, seed, horizon, surges).
        cluster::FleetRouter fr2(d.cfg, d.outages);
        cluster::RouterResult r2 =
            fr2.route(d.rate_per_cycle, d.seed, d.horizon, d.surges);
        ASSERT_EQ(r.traces, r2.traces);
        EXPECT_EQ(r.shed, r2.shed);
        EXPECT_EQ(r.rerouted, r2.rerouted);
        EXPECT_EQ(fr.shardRerouted(), fr2.shardRerouted());
        EXPECT_EQ(fr.autoscalerStats().transitions,
                  fr2.autoscalerStats().transitions);
    }
}

// ---------------------------------------------------------------------
// Randomized Cluster-through-the-hierarchy sweep: shard accounting
// conserves requests and shard merges reproduce fleet percentiles
// bitwise.

TEST(FleetProperties, ClusterShardAccountingIsExact)
{
    auto cfg = testutil::smallConfig();
    Rng meta(20260809);
    const int kConfigs = 12;
    for (int i = 0; i < kConfigs; ++i) {
        core::ExperimentOptions opts = baseOptions();
        opts.seed = 300 + static_cast<std::uint64_t>(i);
        opts.jobs = 1 + meta.uniformInt(0, 3);

        cluster::ClusterSpec spec;
        static const std::size_t replica_choices[] = {4, 6, 8, 9, 12};
        spec.replicas = replica_choices[meta.uniformInt(0, 4)];
        auto policies = cluster::allRoutingPolicies();
        spec.policy = policies[meta.uniformInt(0, policies.size() - 1)];
        spec.fleet.shards =
            2 + meta.uniformInt(0, std::min<std::size_t>(
                                       spec.replicas / 2, 4) -
                                       1);
        spec.fleet.shard_policy =
            policies[meta.uniformInt(0, policies.size() - 1)];
        spec.train_replicas = meta.uniformInt(0, spec.replicas);
        if (meta.uniform() < 0.4) {
            spec.fleet.autoscaler.enabled = true;
            spec.fleet.autoscaler.min_replicas =
                1 + meta.uniformInt(0, spec.replicas / 2);
            spec.fleet.autoscaler.target_p99_s =
                meta.uniform(5e-5, 5e-3);
        }
        if (meta.uniform() < 0.4) {
            auto names = fault::trafficScenarioNames();
            spec.fleet.traffic = fault::trafficScenario(
                names[meta.uniformInt(0, names.size() - 1)],
                opts.max_sim_s);
        }
        double load = meta.uniform(0.2, 1.0);
        SCOPED_TRACE(::testing::Message()
                     << "config " << i << ": replicas " << spec.replicas
                     << " shards " << spec.fleet.shards << " load "
                     << load << " jobs " << opts.jobs << " autoscale "
                     << spec.fleet.autoscaler.enabled);

        cluster::ClusterPointResult res =
            cluster::Cluster(cfg, spec).run(load, opts);

        // Shape: one outcome per shard, contiguous tiling.
        ASSERT_EQ(res.shards, spec.fleet.shards);
        ASSERT_EQ(res.per_shard.size(), res.shards);
        std::size_t covered = 0;
        for (const auto &sh : res.per_shard) {
            EXPECT_EQ(sh.first_replica, covered);
            covered += sh.replicas;
        }
        EXPECT_EQ(covered, spec.replicas);

        // Conservation: fleet == sum over shards == sum over replicas,
        // on assignments, completions, latency samples and faults.
        std::uint64_t shard_assigned = 0, replica_assigned = 0;
        std::uint64_t shard_completed = 0;
        stats::LatencyTracker shard_concat;
        for (const auto &sh : res.per_shard) {
            shard_assigned += sh.assigned_candidates;
            shard_completed += sh.completed_requests;
            // The shard outcome aggregates exactly its member rows.
            std::uint64_t members_assigned = 0;
            std::uint64_t members_completed = 0;
            stats::LatencyTracker members;
            for (std::size_t k = 0; k < sh.replicas; ++k) {
                const auto &rep =
                    res.per_replica[sh.first_replica + k];
                members_assigned += rep.assigned_candidates;
                members_completed += rep.sim.completed_requests;
                for (double sample :
                     rep.sim.latency_cycles.rawSamples())
                    members.record(sample);
            }
            EXPECT_EQ(sh.assigned_candidates, members_assigned);
            EXPECT_EQ(sh.completed_requests, members_completed);
            ASSERT_EQ(sh.merged_latency_cycles.count(),
                      members.count());
            if (members.count() > 0) {
                for (double p : {0.0, 0.5, 0.99, 1.0})
                    EXPECT_EQ(sh.merged_latency_cycles.percentile(p),
                              members.percentile(p))
                        << "shard " << sh.shard << " p" << p;
            }
            for (double sample :
                 sh.merged_latency_cycles.rawSamples())
                shard_concat.record(sample);
        }
        for (const auto &rep : res.per_replica)
            replica_assigned += rep.assigned_candidates;
        EXPECT_EQ(shard_assigned, replica_assigned);
        EXPECT_EQ(res.generated_candidates,
                  replica_assigned + res.router_shed);
        EXPECT_EQ(shard_completed, res.completed_requests);

        // Bitwise shard-percentile merging: concatenating the shard
        // trackers in shard order reproduces the fleet-level merge
        // exactly -- count, every percentile, max and mean.
        ASSERT_EQ(shard_concat.count(),
                  res.merged_latency_cycles.count());
        if (shard_concat.count() > 0) {
            for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
                EXPECT_EQ(res.merged_latency_cycles.percentile(p),
                          shard_concat.percentile(p))
                    << "p" << p;
            EXPECT_EQ(res.merged_latency_cycles.max(),
                      shard_concat.max());
            EXPECT_DOUBLE_EQ(res.merged_latency_cycles.mean(),
                             shard_concat.mean());
        }

        // Autoscaler runs report their envelope; fixed fleets do not.
        EXPECT_EQ(res.autoscaled, spec.fleet.autoscaler.enabled);
        if (res.autoscaled) {
            EXPECT_GE(res.autoscaler.min_active,
                      spec.fleet.autoscaler.min_replicas);
            EXPECT_LE(res.autoscaler.max_active, spec.replicas);
        }
    }
}

// ---------------------------------------------------------------------
// Aggregate throughput is monotone in replica count: at a fixed load
// fraction, doubling the fleet never completes fewer requests.

TEST(FleetProperties, AggregateThroughputMonotoneInReplicaCount)
{
    auto cfg = testutil::smallConfig();
    core::ExperimentOptions opts = baseOptions();
    opts.measure_requests = 150;
    opts.max_sim_s = 0.008;

    std::uint64_t prev_completed = 0;
    double prev_ops = 0.0;
    for (std::size_t replicas : {2, 4, 8}) {
        cluster::ClusterSpec spec;
        spec.replicas = replicas;
        spec.fleet.shards = 2;
        cluster::ClusterPointResult res =
            cluster::Cluster(cfg, spec).run(0.6, opts);
        EXPECT_GE(res.completed_requests, prev_completed)
            << "fleet of " << replicas << " completed less";
        EXPECT_GE(res.aggregate_inference_ops, prev_ops)
            << "fleet of " << replicas << " slowed down";
        prev_completed = res.completed_requests;
        prev_ops = res.aggregate_inference_ops;
    }
}

// ---------------------------------------------------------------------
// Autoscaler reaction: a flash crowd forces scale-ups, the quiet tail
// scales back down, and the plan never leaves [min, max].

TEST(FleetProperties, AutoscalerTracksAFlashCrowd)
{
    cluster::FleetRouter::Config fc;
    fc.replicas = 16;
    fc.shards = 4;
    fc.service_rate_per_cycle = 1e-4;
    fc.autoscale = true;
    fc.min_active = 2;
    fc.max_active = 16;
    fc.initial_active = 2;
    // A huge latency target keeps the proportional term quiet; the
    // feed-forward capacity plan does the tracking.
    fc.target_p99_cycles = 1e9;
    fc.decision_interval = 2000;
    fc.cooldown = 4000;
    fc.warmup = 1000;
    fc.min_samples = 4;

    // Base load needs ~5 replicas; the 4x surge in the middle needs
    // the whole fleet.
    std::vector<cluster::RouterSurge> surges = {{80000, 160000, 4.0}};
    cluster::FleetRouter fr(fc, {});
    fr.route(4e-4, 99, 300000, surges);

    const cluster::AutoscalerStats &st = fr.autoscalerStats();
    EXPECT_GT(st.decisions, 0u);
    EXPECT_GE(st.scale_ups, 1u) << "the surge never scaled up";
    EXPECT_GE(st.scale_downs, 1u) << "the quiet tail never scaled down";
    EXPECT_GE(st.min_active, 2u);
    EXPECT_LE(st.max_active, 16u);
    EXPECT_GT(st.max_active, st.min_active);
    // The surge-era provisioning outgrew the steady-state need.
    EXPECT_GT(st.max_active, 5u);
    EXPECT_GT(st.needed_replica_ticks, 0.0);
}

// ---------------------------------------------------------------------
// Traffic mixes: the factor algebra behind the arrival shaping.

TEST(TrafficMix, DiurnalFactorOscillatesBetweenOneAndPeak)
{
    fault::DiurnalPolicy d;
    d.period_s = 1.0;
    d.peak_factor = 3.0;
    d.phase = 0.25; // peak at t = 0.25
    EXPECT_TRUE(d.enabled());
    EXPECT_DOUBLE_EQ(d.factorAt(0.25), 3.0);
    EXPECT_DOUBLE_EQ(d.factorAt(0.75), 1.0); // trough half a period on
    for (double t = 0.0; t < 2.0; t += 0.05) {
        EXPECT_GE(d.factorAt(t), 1.0);
        EXPECT_LE(d.factorAt(t), 3.0);
    }
    // Periodicity.
    EXPECT_NEAR(d.factorAt(0.1), d.factorAt(1.1), 1e-12);

    fault::DiurnalPolicy off;
    EXPECT_FALSE(off.enabled());
    EXPECT_DOUBLE_EQ(off.factorAt(0.4), 1.0);
}

TEST(TrafficMix, MaterializedWindowsAmplifyAndConserveShape)
{
    const double horizon = 0.02;
    for (const auto &name : fault::trafficScenarioNames()) {
        fault::TrafficMix mix = fault::trafficScenario(name, horizon);
        EXPECT_TRUE(mix.enabled()) << name;
        EXPECT_TRUE(mix.validate().empty()) << name;
        auto windows = fault::materializeTraffic(mix, horizon);
        ASSERT_FALSE(windows.empty()) << name;
        double prev_end = 0.0;
        for (const auto &w : windows) {
            // Ordered, non-overlapping, inside the horizon, and every
            // window really amplifies (factor-1 windows are dropped).
            EXPECT_GE(w.from_s, prev_end) << name;
            EXPECT_LT(w.from_s, w.to_s) << name;
            EXPECT_LE(w.to_s, horizon + 1e-9) << name;
            EXPECT_GT(w.factor, 1.0) << name;
            prev_end = w.to_s;
        }
    }
    // A default mix materializes nothing.
    fault::TrafficMix none;
    EXPECT_FALSE(none.enabled());
    EXPECT_TRUE(fault::materializeTraffic(none, horizon).empty());
}

TEST(TrafficMix, TenantSharesBlendFactors)
{
    // One flat tenant and one surging tenant with equal shares: the
    // blended factor is the share-weighted average.
    fault::TrafficMix mix;
    fault::TenantClass flat;
    flat.name = "batch";
    flat.share = 0.5;
    fault::TenantClass spiky;
    spiky.name = "interactive";
    spiky.share = 0.5;
    spiky.surges.push_back({0.0, 1.0, 3.0});
    mix.tenants = {flat, spiky};
    EXPECT_TRUE(mix.validate().empty());
    // Inside the surge: 0.5 * 1 + 0.5 * 3 = 2.
    EXPECT_NEAR(mix.factorAt(0.5), 2.0, 1e-12);
    // Outside: both flat.
    EXPECT_NEAR(mix.factorAt(1.5), 1.0, 1e-12);
}

// ---------------------------------------------------------------------
// Spec validation: fleet knobs reject nonsense, good specs pass, and
// the cluster-level cross-checks fire.

TEST(FleetSpecValidate, ReportsAutoscalerAndTrafficProblems)
{
    cluster::FleetSpec fleet;
    EXPECT_TRUE(fleet.validate().empty()) << "default spec is off";

    fleet.autoscaler.enabled = true;
    fleet.autoscaler.min_replicas = 0;
    fleet.autoscaler.max_replicas = 0;
    fleet.autoscaler.target_p99_s = 0.0;
    fleet.autoscaler.low_watermark = 1.5;
    fleet.autoscaler.target_utilization = 0.0;
    fleet.autoscaler.decision_interval_s = 0.0;
    fleet.autoscaler.cooldown_s = -1.0;
    fleet.autoscaler.warmup_s = -1.0;
    fleet.autoscaler.estimate_window = 0;
    fleet.autoscaler.min_samples = 0;
    // min_replicas, target_p99, low_watermark, target_utilization,
    // decision_interval, cooldown, warmup, estimate_window,
    // min_samples.
    EXPECT_EQ(fleet.validate().size(), 9u);

    cluster::FleetSpec bad_traffic;
    fault::TenantClass t;
    t.name = "";
    t.share = 0.0;
    bad_traffic.traffic.tenants.push_back(t);
    EXPECT_FALSE(bad_traffic.traffic.validate().empty());
}

TEST(ClusterSpecValidate, FleetCrossChecksFire)
{
    cluster::ClusterSpec spec;
    spec.replicas = 4;
    spec.fleet.shards = 8; // more shards than replicas
    spec.fleet.autoscaler.enabled = true;
    spec.fleet.autoscaler.min_replicas = 9; // exceeds the fleet
    spec.fleet.autoscaler.target_p99_s = 0.001;
    spec.resilience.retry.enabled = true; // cannot compose
    auto errors = spec.validate();
    std::size_t fleet_errors = 0;
    for (const auto &e : errors)
        if (e.rfind("fleet:", 0) == 0)
            ++fleet_errors;
    EXPECT_EQ(fleet_errors, 3u) << "shards > replicas, min > fleet, "
                                   "resilience composition";

    cluster::ClusterSpec ok;
    ok.replicas = 8;
    ok.fleet.shards = 4;
    ok.fleet.autoscaler.enabled = true;
    ok.fleet.autoscaler.min_replicas = 2;
    ok.fleet.autoscaler.target_p99_s = 0.001;
    EXPECT_TRUE(ok.validate().empty());
}

} // namespace
} // namespace equinox

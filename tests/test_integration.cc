/**
 * @file
 * End-to-end integration tests on the real Equinox presets: the headline
 * behaviours every figure relies on, run at reduced statistical sizes.
 */

#include <gtest/gtest.h>

#include "core/equinox.hh"

namespace equinox
{
namespace core
{
namespace
{

ExperimentOptions
fastOptions()
{
    ExperimentOptions opts;
    opts.warmup_requests = 150;
    opts.measure_requests = 1200;
    opts.measure_iterations = 8;
    return opts;
}

TEST(Presets, FamilyOrdering)
{
    // Throughput grows and latency grows across the constraint family.
    double prev_tput = 0.0;
    double prev_lat = 0.0;
    for (auto p : allPresets()) {
        auto d = presetDesign(p, arith::Encoding::Hbfp8);
        EXPECT_GE(d.throughput_ops, prev_tput) << presetName(p);
        EXPECT_GE(d.service_time_s, prev_lat) << presetName(p);
        prev_tput = d.throughput_ops;
        prev_lat = d.service_time_s;
    }
}

TEST(Presets, NamesAndConfigs)
{
    auto cfg = presetConfig(Preset::Us500);
    EXPECT_EQ(cfg.name, "Equinox_500us");
    EXPECT_EQ(cfg.encoding, arith::Encoding::Hbfp8);
    EXPECT_GT(cfg.peakOpRate(), 300e12);
}

TEST(Integration, LstmSaturationNearPaperTable2)
{
    auto cfg = presetConfig(Preset::Us500);
    double sat = saturationOpRate(cfg, workload::DnnModel::lstm2048());
    EXPECT_NEAR(sat / 1e12, 319.0, 15.0); // Table 2: 319 TOp/s
}

TEST(Integration, LatencyTargetIsTenTimesServiceTime)
{
    auto cfg = presetConfig(Preset::Us500);
    double target = latencyTargetSeconds(cfg,
                                         workload::DnnModel::lstm2048());
    EXPECT_NEAR(target * 1e3, 4.1, 0.8); // ~10 x 0.41 ms
}

TEST(Integration, SubcriticalLoadIsDelivered)
{
    auto cfg = presetConfig(Preset::Us500);
    auto r = runAtLoad(cfg, 0.5, fastOptions());
    EXPECT_NEAR(r.inference_tops / (0.5 * r.max_inference_tops), 1.0,
                0.07);
    EXPECT_GT(r.p99_ms, r.service_time_ms);
    EXPECT_LT(r.p99_ms, 5.0); // within the paper's SLO
}

TEST(Integration, RelaxedDesignsDeliverMoreThroughput)
{
    // The abstract's claim: the 500us design delivers ~6.7x the
    // latency-optimal design's throughput.
    auto min_cfg = presetConfig(Preset::Min);
    auto us500_cfg = presetConfig(Preset::Us500);
    double min_sat = saturationOpRate(min_cfg,
                                      workload::DnnModel::lstm2048());
    double us500_sat = saturationOpRate(us500_cfg,
                                        workload::DnnModel::lstm2048());
    EXPECT_NEAR(us500_sat / min_sat, 6.0, 1.5);
}

TEST(Integration, TrainingPiggybacksWithoutHurtingInference)
{
    auto cfg = presetConfig(Preset::Us500);
    auto opts = fastOptions();
    auto inf_only = runAtLoad(cfg, 0.7, opts);
    opts.train_model = workload::DnnModel::lstm2048();
    auto both = runAtLoad(cfg, 0.7, opts);
    EXPECT_NEAR(both.inference_tops / inf_only.inference_tops, 1.0,
                0.08);
    EXPECT_GT(both.training_tops, 20.0);
    // Latency overhead exists but stays within the SLO.
    double target_ms =
        latencyTargetSeconds(cfg, workload::DnnModel::lstm2048()) * 1e3;
    EXPECT_LT(both.p99_ms, target_ms);
}

TEST(Integration, TrainingCapIsDramBound)
{
    // Training alone saturates near the DRAM-bandwidth bound (~107
    // TOp/s in the paper, ~100-120 here).
    auto cfg = presetConfig(Preset::None);
    auto opts = fastOptions();
    opts.train_model = workload::DnnModel::lstm2048();
    auto r = runAtLoad(cfg, 0.0, opts);
    EXPECT_GT(r.training_tops, 85.0);
    EXPECT_LT(r.training_tops, 130.0);
}

TEST(Integration, MinPresetTrainsPoorly)
{
    // Figure 9: the latency-optimal design reaches only ~19% of the
    // maximum training throughput.
    auto opts = fastOptions();
    opts.train_model = workload::DnnModel::lstm2048();
    auto min_r = runAtLoad(presetConfig(Preset::Min), 0.6, opts);
    auto relaxed_r = runAtLoad(presetConfig(Preset::Us500), 0.6, opts);
    EXPECT_LT(min_r.training_tops, 0.45 * relaxed_r.training_tops);
}

TEST(Integration, BreakdownAt95PercentIsSaturated)
{
    auto cfg = presetConfig(Preset::Us500);
    auto r = runAtLoad(cfg, 0.95, fastOptions());
    using stats::CycleClass;
    EXPECT_GT(r.sim.mmu_breakdown.fraction(CycleClass::Working), 0.6);
    EXPECT_LT(r.sim.mmu_breakdown.fraction(CycleClass::Idle), 0.1);
}

TEST(Integration, Bfloat16PresetIsMuchSlower)
{
    auto h = presetConfig(Preset::Us500, arith::Encoding::Hbfp8);
    auto b = presetConfig(Preset::Us500, arith::Encoding::Bfloat16);
    double hs = saturationOpRate(h, workload::DnnModel::lstm2048());
    double bs = saturationOpRate(b, workload::DnnModel::lstm2048());
    EXPECT_GT(hs / bs, 4.0); // paper: up to 5.15x
}

TEST(Integration, GruAndLstmShareTrainingThroughputScale)
{
    // Table 2: LSTM and GRU reach similar training throughput.
    auto cfg = presetConfig(Preset::Us500);
    auto opts = fastOptions();
    opts.warmup_requests = 20;
    opts.measure_requests = 250;
    opts.model = workload::DnnModel::lstm2048();
    opts.train_model = workload::DnnModel::lstm2048();
    auto lstm = runAtLoad(cfg, 0.6, opts);
    opts.model = workload::DnnModel::gru2816();
    opts.train_model = workload::DnnModel::gru2816();
    auto gru = runAtLoad(cfg, 0.6, opts);
    EXPECT_GT(gru.training_tops, 0.4 * lstm.training_tops);
    EXPECT_LT(gru.training_tops, 1.6 * lstm.training_tops);
}

} // namespace
} // namespace core
} // namespace equinox

// Appended: CSV export and queueing-behaviour validation.

#include <cstdio>
#include <fstream>

namespace equinox
{
namespace core
{
namespace
{

TEST(CsvExport, RoundTripsASweep)
{
    auto cfg = presetConfig(Preset::Us500);
    ExperimentOptions opts = fastOptions();
    opts.measure_requests = 600;
    auto sweep = runLoadSweep(cfg, {0.2, 0.6}, opts);

    std::string path = "/tmp/equinox_sweep_test.csv";
    ASSERT_TRUE(writeCsv(path, sweep));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    std::getline(in, header);
    EXPECT_NE(header.find("load,inference_tops"), std::string::npos);
    int rows = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty())
            ++rows;
    }
    EXPECT_EQ(rows, 2);
    std::remove(path.c_str());
}

TEST(CsvExport, FailsOnUnwritablePath)
{
    EXPECT_FALSE(writeCsv("/nonexistent-dir/x.csv", {}));
}

TEST(QueueingBehaviour, TailGrowsTowardsSaturation)
{
    // Open-loop queueing sanity: past ~95% load the p99 must grow
    // steeply (the Figure 7 hockey stick), and sub-critical loads must
    // stay near the batch-formation floor.
    auto cfg = presetConfig(Preset::Us500);
    ExperimentOptions opts = fastOptions();
    opts.min_measure_s = 0.15;
    opts.warmup_s = 0.01;
    auto mid = runAtLoad(cfg, 0.6, opts);
    auto sat = runAtLoad(cfg, 1.05, opts);
    EXPECT_LT(mid.p99_ms, 2.0);
    EXPECT_GT(sat.p99_ms, 3.0 * mid.p99_ms);
    // Delivered throughput clips at the saturation rate.
    EXPECT_LE(sat.inference_tops, sat.max_inference_tops * 1.01);
    EXPECT_GT(sat.inference_tops, sat.max_inference_tops * 0.95);
}

TEST(QueueingBehaviour, LittlesLawHoldsSubcritical)
{
    // At a stable load, delivered request rate x mean latency must be
    // finite and consistent with the offered rate (throughput == input
    // rate in steady state).
    auto cfg = presetConfig(Preset::Us500);
    ExperimentOptions opts = fastOptions();
    opts.measure_requests = 2500;
    auto r = runAtLoad(cfg, 0.5, opts);
    double req_rate = r.inference_tops * 1e12 /
                      workload::DnnModel::lstm2048().opsPerRequest();
    double offered = 0.5 * r.max_inference_tops * 1e12 /
                     workload::DnnModel::lstm2048().opsPerRequest();
    EXPECT_NEAR(req_rate / offered, 1.0, 0.07);
    EXPECT_GT(r.mean_ms, 0.0);
    EXPECT_LT(r.mean_ms, 2.0);
}

} // namespace
} // namespace core
} // namespace equinox

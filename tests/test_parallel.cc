/**
 * @file
 * Unit tests for the deterministic parallel sweep engine
 * (common/parallel): result ordering, exception propagation, the
 * serial fast path, nested-region degradation and the ThreadPool
 * itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hh"

namespace equinox
{
namespace
{

TEST(DefaultJobs, AtLeastOne) { EXPECT_GE(defaultJobs(), 1u); }

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroMeansDefaultJobs)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), defaultJobs());
}

TEST(ParallelFor, ResultsLandAtTheirIndex)
{
    for (std::size_t jobs : {1u, 2u, 4u, 16u}) {
        std::vector<std::size_t> out(257, 0);
        parallelFor(jobs, out.size(),
                    [&](std::size_t i) { out[i] = i * i; });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], i * i) << "jobs=" << jobs << " i=" << i;
    }
}

TEST(ParallelFor, EveryIndexRunsExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(8, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyRangeIsANoop)
{
    bool ran = false;
    parallelFor(4, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelFor, MoreJobsThanWork)
{
    std::vector<int> out(3, 0);
    parallelFor(64, out.size(), [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 3);
}

TEST(ParallelFor, SerialPathStaysOnCallingThread)
{
    const auto caller = std::this_thread::get_id();
    parallelFor(1, 8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_FALSE(inParallelRegion());
    });
}

TEST(ParallelFor, SingleItemStaysOnCallingThread)
{
    const auto caller = std::this_thread::get_id();
    parallelFor(8, 1, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

TEST(ParallelFor, LowestIndexExceptionWins)
{
    // Indices 3 and 7 both throw; the rethrown exception must be index
    // 3's regardless of wall-clock completion order. Repeat to give a
    // racy implementation chances to fail.
    for (int round = 0; round < 20; ++round) {
        try {
            parallelFor(4, 10, [&](std::size_t i) {
                if (i == 3 || i == 7)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        }
        catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 3");
        }
    }
}

TEST(ParallelFor, ExceptionDoesNotAbortOtherIndices)
{
    std::vector<std::atomic<int>> hits(64);
    EXPECT_THROW(parallelFor(4, hits.size(),
                             [&](std::size_t i) {
                                 ++hits[i];
                                 if (i == 0)
                                     throw std::runtime_error("x");
                             }),
                 std::runtime_error);
    // Every index still executed: an exception marks the sweep failed
    // but does not cancel queued work.
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, SerialPathPropagatesExceptions)
{
    EXPECT_THROW(parallelFor(1, 4,
                             [](std::size_t i) {
                                 if (i == 2)
                                     throw std::logic_error("serial");
                             }),
                 std::logic_error);
}

TEST(ParallelFor, NestedCallDegradesToSerial)
{
    std::atomic<int> inner_total{0};
    parallelFor(4, 8, [&](std::size_t) {
        EXPECT_TRUE(inParallelRegion());
        const auto worker = std::this_thread::get_id();
        parallelFor(4, 5, [&](std::size_t) {
            // The nested loop must run inline on the same worker.
            EXPECT_EQ(std::this_thread::get_id(), worker);
            ++inner_total;
        });
    });
    EXPECT_EQ(inner_total.load(), 8 * 5);
    EXPECT_FALSE(inParallelRegion());
}

// ---------------------------------------------------------------------
// parallelForStrided: the fixed-width fan-out behind the cluster
// replica sweep (one task per worker slot, indices round-robined).

TEST(ParallelForStrided, EveryIndexRunsExactlyOnceFarBeyondWorkers)
{
    // 1000 indices over 3 workers: each worker owns ~333 strided
    // indices -- the replicas >> workers regime parallelFor's
    // task-per-index shape was never meant for.
    std::vector<std::atomic<int>> hits(1000);
    parallelForStrided(3, hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForStrided, ResultsMatchSerialForEveryWidth)
{
    std::vector<std::size_t> serial(257, 0);
    parallelForStrided(1, serial.size(),
                       [&](std::size_t i) { serial[i] = i * 3 + 1; });
    for (std::size_t jobs : {2u, 4u, 5u, 64u}) {
        std::vector<std::size_t> out(257, 0);
        parallelForStrided(jobs, out.size(),
                           [&](std::size_t i) { out[i] = i * 3 + 1; });
        EXPECT_EQ(out, serial) << "jobs=" << jobs;
    }
}

TEST(ParallelForStrided, SerialAndSingleItemStayOnCallingThread)
{
    const auto caller = std::this_thread::get_id();
    parallelForStrided(1, 8, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        EXPECT_FALSE(inParallelRegion());
    });
    parallelForStrided(8, 1, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
    bool ran = false;
    parallelForStrided(4, 0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ParallelForStrided, LowestIndexExceptionWinsAcrossStrides)
{
    // Indices 2 and 9 throw from DIFFERENT strides (width 4): the
    // rethrown exception must be index 2's on every replay.
    for (int round = 0; round < 20; ++round) {
        try {
            parallelForStrided(4, 12, [&](std::size_t i) {
                if (i == 2 || i == 9)
                    throw std::runtime_error("boom " + std::to_string(i));
            });
            FAIL() << "expected an exception";
        }
        catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "boom 2");
        }
    }
}

TEST(ParallelForStrided, ExceptionDoesNotAbortOtherIndices)
{
    std::vector<std::atomic<int>> hits(100);
    EXPECT_THROW(parallelForStrided(4, hits.size(),
                                    [&](std::size_t i) {
                                        ++hits[i];
                                        if (i == 5)
                                            throw std::runtime_error("x");
                                    }),
                 std::runtime_error);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelForStrided, NestedCallDegradesToSerial)
{
    std::atomic<int> inner_total{0};
    parallelForStrided(4, 8, [&](std::size_t) {
        EXPECT_TRUE(inParallelRegion());
        const auto worker = std::this_thread::get_id();
        parallelForStrided(4, 5, [&](std::size_t) {
            EXPECT_EQ(std::this_thread::get_id(), worker);
            ++inner_total;
        });
    });
    EXPECT_EQ(inner_total.load(), 8 * 5);
}

TEST(ParallelMap, CollectsInInputOrder)
{
    std::vector<int> inputs(100);
    std::iota(inputs.begin(), inputs.end(), 0);
    auto out =
        parallelMap(8, inputs, [](int v) { return std::to_string(v); });
    ASSERT_EQ(out.size(), inputs.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], std::to_string(i));
}

} // namespace
} // namespace equinox

/**
 * @file
 * Unit tests for the overload-resilience control plane: ChaosPlan /
 * ResilienceSpec validation messages, the admission policies, the
 * circuit-breaker state machine, chaos materialization determinism,
 * surge-aware arrival generation, and the ControlPlane conservation
 * identities.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/admission.hh"
#include "cluster/circuit_breaker.hh"
#include "cluster/control_plane.hh"
#include "cluster/router.hh"
#include "common/random.hh"
#include "fault/chaos_plan.hh"

namespace equinox
{
namespace
{

bool
anyErrorContains(const std::vector<std::string> &errors,
                 const std::string &needle)
{
    return std::any_of(errors.begin(), errors.end(),
                       [&](const std::string &e) {
                           return e.find(needle) != std::string::npos;
                       });
}

// ---------------------------------------------------------------------
// ChaosPlan validation: every rejection carries an actionable message.

TEST(ChaosPlanValidate, DefaultPlanIsValidAndDisabled)
{
    fault::ChaosPlan plan;
    EXPECT_FALSE(plan.enabled());
    EXPECT_TRUE(plan.validate().empty());
}

TEST(ChaosPlanValidate, RejectsNegativeRates)
{
    fault::ChaosPlan plan;
    plan.crash.rate_per_replica_s = -1.0;
    plan.rack.rate_per_s = -0.5;
    plan.storm.rate_per_s = -2.0;
    plan.crowd.rate_per_s = -3.0;
    auto errors = plan.validate();
    EXPECT_EQ(errors.size(), 4u);
    EXPECT_TRUE(anyErrorContains(errors, "crash.rate_per_replica_s"));
    EXPECT_TRUE(anyErrorContains(errors, "rack.rate_per_s"));
    EXPECT_TRUE(anyErrorContains(errors, "storm.rate_per_s"));
    EXPECT_TRUE(anyErrorContains(errors, "crowd.rate_per_s"));
}

TEST(ChaosPlanValidate, RejectsChurnWithZeroRepairTime)
{
    fault::ChaosPlan plan;
    plan.crash.rate_per_replica_s = 1.0;
    plan.crash.mttr_s = 0.0;
    EXPECT_TRUE(anyErrorContains(plan.validate(), "mttr_s"));
}

TEST(ChaosPlanValidate, RejectsRackOutagesWithoutARack)
{
    fault::ChaosPlan plan;
    plan.rack.rate_per_s = 1.0;
    plan.rack.rack_size = 0;
    EXPECT_TRUE(anyErrorContains(plan.validate(), "rack.rack_size"));
    plan.rack.rack_size = 2;
    plan.rack.outage_s = 0.0;
    EXPECT_TRUE(anyErrorContains(plan.validate(), "rack.outage_s"));
}

TEST(ChaosPlanValidate, RejectsEmptyStorms)
{
    fault::ChaosPlan plan;
    plan.storm.rate_per_s = 1.0;
    plan.storm.duration_s = 0.0;
    plan.storm.hangs_per_storm = 0;
    auto errors = plan.validate();
    EXPECT_TRUE(anyErrorContains(errors, "storm.duration_s"));
    EXPECT_TRUE(anyErrorContains(errors, "hangs_per_storm"));
}

TEST(ChaosPlanValidate, RejectsSurgesThatDoNotSurge)
{
    fault::ChaosPlan plan;
    plan.crowd.rate_per_s = 1.0;
    plan.crowd.factor = 1.0;
    EXPECT_TRUE(anyErrorContains(plan.validate(), "crowd.factor"));

    fault::ChaosPlan scheduled;
    scheduled.scheduled_surges.push_back({0.1, 0.2, 0.9});
    EXPECT_TRUE(
        anyErrorContains(scheduled.validate(), "surge factor"));
}

TEST(ChaosPlanValidate, RejectsBackwardsWindows)
{
    fault::ChaosPlan plan;
    plan.scheduled_outages.push_back({0, 0.2, 0.1});
    plan.scheduled_surges.push_back({0.5, 0.4, 2.0});
    auto errors = plan.validate();
    EXPECT_TRUE(anyErrorContains(errors, "scheduled outage"));
    EXPECT_TRUE(anyErrorContains(errors, "scheduled surge"));
}

// ---------------------------------------------------------------------
// ResilienceSpec validation: the satellite-mandated rejections.

TEST(ResilienceSpecValidate, DefaultSpecIsValidAndDisabled)
{
    cluster::ResilienceSpec spec;
    EXPECT_FALSE(spec.enabled());
    EXPECT_TRUE(spec.validate().empty());
}

TEST(ResilienceSpecValidate, RejectsZeroRetryBudgetWithRetriesEnabled)
{
    cluster::ResilienceSpec spec;
    spec.retry.enabled = true;
    spec.retry.max_budget = 0.0;
    EXPECT_TRUE(anyErrorContains(spec.validate(),
                                 "retry.max_budget must be positive"));
}

TEST(ResilienceSpecValidate, RejectsNonPositiveHedgeThreshold)
{
    cluster::ResilienceSpec spec;
    spec.hedge.enabled = true;
    spec.hedge.latency_factor = 0.0;
    EXPECT_TRUE(anyErrorContains(spec.validate(),
                                 "hedge.latency_factor must be > 0"));
    spec.hedge.latency_factor = -2.0;
    EXPECT_TRUE(anyErrorContains(spec.validate(),
                                 "hedge.latency_factor must be > 0"));
}

TEST(ResilienceSpecValidate, RejectsDegenerateRetryKnobs)
{
    cluster::ResilienceSpec spec;
    spec.retry.enabled = true;
    spec.retry.max_attempts = 1;
    spec.retry.base_backoff_cycles = 0;
    spec.retry.backoff_multiplier = 0.5;
    spec.retry.jitter_frac = -0.1;
    auto errors = spec.validate();
    EXPECT_TRUE(anyErrorContains(errors, "retry.max_attempts"));
    EXPECT_TRUE(anyErrorContains(errors, "retry.base_backoff_cycles"));
    EXPECT_TRUE(anyErrorContains(errors, "retry.backoff_multiplier"));
    EXPECT_TRUE(anyErrorContains(errors, "retry.jitter_frac"));
}

TEST(ResilienceSpecValidate, RejectsDegenerateHedgeWindow)
{
    cluster::ResilienceSpec spec;
    spec.hedge.enabled = true;
    spec.hedge.window = 0;
    spec.hedge.min_samples = 0;
    spec.hedge.max_hedge_fraction = 0.0;
    auto errors = spec.validate();
    EXPECT_TRUE(anyErrorContains(errors, "hedge.window"));
    EXPECT_TRUE(anyErrorContains(errors, "hedge.min_samples"));
    EXPECT_TRUE(anyErrorContains(errors, "hedge.max_hedge_fraction"));
}

TEST(ResilienceSpecValidate, RejectsBadAdmissionKnobs)
{
    cluster::AdmissionConfig cfg;
    cfg.background_fraction = 1.5;
    EXPECT_TRUE(anyErrorContains(cfg.validate(),
                                 "admission.background_fraction"));

    cfg = cluster::AdmissionConfig{};
    cfg.policy = cluster::AdmissionPolicy::TokenBucket;
    cfg.rate_factor = 0.0;
    cfg.burst = 0.5;
    auto errors = cfg.validate();
    EXPECT_TRUE(anyErrorContains(errors, "admission.rate_factor"));
    EXPECT_TRUE(anyErrorContains(errors, "admission.burst"));

    cfg = cluster::AdmissionConfig{};
    cfg.policy = cluster::AdmissionPolicy::QueueDepth;
    cfg.target_backlog = 0.0;
    cfg.interval_cycles = 0;
    errors = cfg.validate();
    EXPECT_TRUE(anyErrorContains(errors, "admission.target_backlog"));
    EXPECT_TRUE(anyErrorContains(errors, "admission.interval_cycles"));

    cfg = cluster::AdmissionConfig{};
    cfg.policy = cluster::AdmissionPolicy::PriorityShed;
    cfg.background_watermark = 4.0;
    cfg.inference_watermark = 4.0;
    EXPECT_TRUE(anyErrorContains(cfg.validate(),
                                 "admission.inference_watermark"));
}

TEST(ResilienceSpecValidate, RejectsBadBreakerKnobs)
{
    cluster::BreakerConfig cfg;
    cfg.enabled = false;
    cfg.trip_failures = 0; // ignored while disabled
    EXPECT_TRUE(cfg.validate().empty());

    cfg.enabled = true;
    cfg.probe_interval_cycles = 0;
    cfg.cooldown_cycles = 0;
    cfg.halfopen_probes = 0;
    cfg.latency_trip_cycles = -1.0;
    auto errors = cfg.validate();
    EXPECT_TRUE(anyErrorContains(errors, "breaker.trip_failures"));
    EXPECT_TRUE(anyErrorContains(errors, "breaker.probe_interval_cycles"));
    EXPECT_TRUE(anyErrorContains(errors, "breaker.cooldown_cycles"));
    EXPECT_TRUE(anyErrorContains(errors, "breaker.halfopen_probes"));
    EXPECT_TRUE(anyErrorContains(errors, "breaker.latency_trip_cycles"));
}

// ---------------------------------------------------------------------
// Admission policies.

TEST(AdmissionController, TokenBucketClipsAboveTheRefillRate)
{
    cluster::AdmissionConfig cfg;
    cfg.policy = cluster::AdmissionPolicy::TokenBucket;
    cfg.burst = 4.0;
    // 0.01 tokens per cycle; offering every cycle overruns 100x.
    cluster::AdmissionController ctl(cfg, 0.01);
    std::uint64_t admitted = 0;
    for (Tick t = 0; t < 10000; ++t)
        admitted += ctl.offer(t, false, 0.0) ? 1 : 0;
    // Burst drains first, then admission tracks the refill rate.
    EXPECT_GE(admitted, 100u);
    EXPECT_LE(admitted, 110u);
    EXPECT_EQ(ctl.stats().offered, 10000u);
    EXPECT_EQ(ctl.stats().admitted, admitted);
    EXPECT_EQ(ctl.stats().shed_rate_limited, 10000u - admitted);
}

TEST(AdmissionController, CoDelShedsOnlyAfterSustainedExcursion)
{
    cluster::AdmissionConfig cfg;
    cfg.policy = cluster::AdmissionPolicy::QueueDepth;
    cfg.target_backlog = 4.0;
    cfg.interval_cycles = 1000;
    cluster::AdmissionController ctl(cfg, 0.0);

    // Backlog above target, but shorter than one interval: no sheds.
    for (Tick t = 0; t < 999; ++t)
        EXPECT_TRUE(ctl.offer(t, false, 10.0));
    // Backlog recovers; the excursion clock resets.
    EXPECT_TRUE(ctl.offer(1000, false, 1.0));
    EXPECT_EQ(ctl.stats().shed_queue, 0u);

    // A full interval above target starts the CoDel drop cadence.
    std::uint64_t shed = 0;
    for (Tick t = 2000; t < 12000; ++t)
        shed += ctl.offer(t, false, 10.0) ? 0 : 1;
    EXPECT_GT(shed, 0u);
    EXPECT_EQ(ctl.stats().shed_queue, shed);
    // Drops stay paced (interval/sqrt(n)), nowhere near one-per-tick.
    EXPECT_LT(shed, 200u);
}

TEST(AdmissionController, PriorityShedsBackgroundBeforeInference)
{
    cluster::AdmissionConfig cfg;
    cfg.policy = cluster::AdmissionPolicy::PriorityShed;
    cfg.background_watermark = 2.0;
    cfg.inference_watermark = 8.0;
    cluster::AdmissionController ctl(cfg, 0.0);

    // Below both watermarks: everything passes.
    EXPECT_TRUE(ctl.offer(0, true, 1.0));
    EXPECT_TRUE(ctl.offer(1, false, 1.0));
    // Between the watermarks: background sheds, inference passes.
    EXPECT_FALSE(ctl.offer(2, true, 4.0));
    EXPECT_TRUE(ctl.offer(3, false, 4.0));
    // Above the inference watermark: both shed.
    EXPECT_FALSE(ctl.offer(4, true, 9.0));
    EXPECT_FALSE(ctl.offer(5, false, 9.0));

    EXPECT_EQ(ctl.stats().shed_background, 2u);
    EXPECT_EQ(ctl.stats().shed_inference, 1u);
    EXPECT_EQ(ctl.stats().offered, 6u);
    EXPECT_EQ(ctl.stats().offered_background, 3u);
    EXPECT_EQ(ctl.stats().admitted, 3u);
}

TEST(AdmissionStats, MergeAccumulatesEveryCounter)
{
    cluster::AdmissionStats a, b;
    a.offered = 1;
    a.admitted = 1;
    b.offered = 10;
    b.offered_background = 2;
    b.admitted = 5;
    b.shed_rate_limited = 1;
    b.shed_queue = 2;
    b.shed_background = 1;
    b.shed_inference = 1;
    b.deadline_missed = 3;
    a.merge(b);
    EXPECT_EQ(a.offered, 11u);
    EXPECT_EQ(a.offered_background, 2u);
    EXPECT_EQ(a.admitted, 6u);
    EXPECT_EQ(a.totalShed(), 5u);
    EXPECT_EQ(a.deadline_missed, 3u);

    // Merging a default-constructed record is exactly a no-op.
    cluster::AdmissionStats before = a, zero;
    a.merge(zero);
    EXPECT_EQ(a.offered, before.offered);
    EXPECT_EQ(a.totalShed(), before.totalShed());
}

// ---------------------------------------------------------------------
// Circuit breaker state machine.

TEST(CircuitBreaker, WalksClosedOpenHalfOpenClosed)
{
    cluster::BreakerConfig cfg;
    cfg.enabled = true;
    cfg.trip_failures = 3;
    cfg.probe_interval_cycles = 10;
    cfg.cooldown_cycles = 100;
    cfg.halfopen_probes = 2;
    cluster::CircuitBreaker br(cfg);

    using State = cluster::CircuitBreaker::State;
    EXPECT_EQ(br.state(), State::Closed);
    EXPECT_TRUE(br.allows(0));

    // Two bad probes are not enough; the third trips it.
    br.observe(10, false);
    br.observe(20, false);
    EXPECT_EQ(br.state(), State::Closed);
    br.observe(30, false);
    EXPECT_EQ(br.state(), State::Open);
    EXPECT_EQ(br.opens(), 1u);
    EXPECT_FALSE(br.allows(50));

    // Cooldown elapses: allows() advances Open -> HalfOpen.
    EXPECT_TRUE(br.allows(131));
    EXPECT_EQ(br.state(), State::HalfOpen);

    // One good probe is not enough; the second closes it.
    br.observe(140, true);
    EXPECT_EQ(br.state(), State::HalfOpen);
    br.observe(150, true);
    EXPECT_EQ(br.state(), State::Closed);
    EXPECT_EQ(br.closes(), 1u);
}

TEST(CircuitBreaker, HalfOpenReopensOnOneBadProbe)
{
    cluster::BreakerConfig cfg;
    cfg.enabled = true;
    cfg.trip_failures = 1;
    cfg.probe_interval_cycles = 10;
    cfg.cooldown_cycles = 100;
    cfg.halfopen_probes = 2;
    cluster::CircuitBreaker br(cfg);

    using State = cluster::CircuitBreaker::State;
    br.observe(10, false);
    EXPECT_EQ(br.state(), State::Open);
    EXPECT_TRUE(br.allows(111));
    EXPECT_EQ(br.state(), State::HalfOpen);
    br.observe(120, false);
    EXPECT_EQ(br.state(), State::Open);
    EXPECT_EQ(br.reopens(), 1u);
    // The cooldown restarted at the reopen.
    EXPECT_FALSE(br.allows(130));
    EXPECT_TRUE(br.allows(221));
    EXPECT_EQ(br.state(), State::HalfOpen);
}

TEST(CircuitBreaker, ProbesAreRateLimited)
{
    cluster::BreakerConfig cfg;
    cfg.enabled = true;
    cfg.trip_failures = 3;
    cfg.probe_interval_cycles = 100;
    cluster::CircuitBreaker br(cfg);

    // A burst of failures inside one probe interval is ONE probe.
    for (Tick t = 0; t < 50; ++t)
        br.observe(t, false);
    EXPECT_EQ(br.state(), cluster::CircuitBreaker::State::Closed);
    br.observe(100, false);
    br.observe(200, false);
    EXPECT_EQ(br.state(), cluster::CircuitBreaker::State::Open);
}

// ---------------------------------------------------------------------
// Chaos materialization.

TEST(MaterializeChaos, IsDeterministicAndSeedSensitive)
{
    fault::ChaosPlan plan;
    plan.seed = 42;
    plan.crash.rate_per_replica_s = 40.0;
    plan.crash.mttr_s = 0.002;
    plan.storm.rate_per_s = 100.0;
    plan.storm.duration_s = 0.002;
    plan.crowd.rate_per_s = 50.0;
    plan.crowd.duration_s = 0.002;

    auto a = fault::materializeChaos(plan, 4, 0.1);
    auto b = fault::materializeChaos(plan, 4, 0.1);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i) {
        EXPECT_EQ(a.outages[i].replica, b.outages[i].replica);
        EXPECT_EQ(a.outages[i].from_s, b.outages[i].from_s);
        EXPECT_EQ(a.outages[i].to_s, b.outages[i].to_s);
    }
    ASSERT_EQ(a.surges.size(), b.surges.size());
    EXPECT_GT(a.outages.size(), 0u);
    EXPECT_GT(a.surges.size(), 0u);

    plan.seed = 43;
    auto c = fault::materializeChaos(plan, 4, 0.1);
    bool differs = c.outages.size() != a.outages.size();
    for (std::size_t i = 0;
         !differs && i < std::min(a.outages.size(), c.outages.size());
         ++i)
        differs = a.outages[i].from_s != c.outages[i].from_s;
    EXPECT_TRUE(differs) << "reseeding must move the chaos events";
}

TEST(MaterializeChaos, ComponentsAreDecorrelated)
{
    // Zeroing the storm policy must not move the crash draws: each
    // component forks its own RNG stream from the plan seed.
    fault::ChaosPlan both;
    both.crash.rate_per_replica_s = 40.0;
    both.crash.mttr_s = 0.002;
    both.storm.rate_per_s = 100.0;
    both.storm.duration_s = 0.002;

    fault::ChaosPlan crash_only = both;
    crash_only.storm.rate_per_s = 0.0;

    auto a = fault::materializeChaos(both, 3, 0.1);
    auto b = fault::materializeChaos(crash_only, 3, 0.1);
    ASSERT_EQ(a.outages.size(), b.outages.size());
    for (std::size_t i = 0; i < a.outages.size(); ++i)
        EXPECT_EQ(a.outages[i].from_s, b.outages[i].from_s);
}

TEST(MaterializeChaos, ExpandsTheEveryReplicaSentinel)
{
    fault::ChaosPlan plan;
    plan.scheduled_outages.push_back(
        {fault::kEveryReplica, 0.01, 0.02});
    auto m = fault::materializeChaos(plan, 3, 0.1);
    ASSERT_EQ(m.outages.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(m.outages[r].replica, r);
        EXPECT_DOUBLE_EQ(m.outages[r].from_s, 0.01);
        EXPECT_DOUBLE_EQ(m.outages[r].to_s, 0.02);
    }
}

TEST(MaterializeChaos, NamedScenariosValidateAndMaterialize)
{
    for (const auto &name : fault::chaosScenarioNames()) {
        auto plan = fault::chaosScenario(name, 0.1);
        EXPECT_TRUE(plan.enabled()) << name;
        EXPECT_TRUE(plan.validate().empty()) << name;
        auto m = fault::materializeChaos(plan, 4, 0.1);
        EXPECT_GT(m.outages.size() + m.surges.size() +
                      m.replica_faults.size(),
                  0u)
            << name;
    }
}

// ---------------------------------------------------------------------
// Surge-aware arrival generation.

TEST(GenerateCandidateTicks, NoSurgeReplaysTheLegacyRecipe)
{
    // The no-surge path must replay RequestDispatcher's arrival recipe
    // bit for bit: Rng(seed * 7919 + 1), exponential waits,
    // `t += Tick(wait) + 1`, one candidate past the horizon.
    const double rate = 1e-4;
    const std::uint64_t seed = 7;
    const Tick horizon = 500000;
    auto ticks = cluster::generateCandidateTicks(rate, seed, horizon);

    std::vector<Tick> expect;
    Rng rng(seed * 7919 + 1);
    Tick t = 0;
    while (true) {
        t += static_cast<Tick>(rng.exponential(rate)) + 1;
        expect.push_back(t);
        if (t > horizon)
            break;
    }
    ASSERT_EQ(ticks.size(), expect.size());
    for (std::size_t i = 0; i < ticks.size(); ++i)
        ASSERT_EQ(ticks[i], expect[i]) << "tick " << i;
}

TEST(GenerateCandidateTicks, SurgeWindowsDensifyArrivals)
{
    const double rate = 1e-4;
    const Tick horizon = 2000000;
    std::vector<cluster::RouterSurge> surges{
        {500000, 1000000, 3.0}};
    auto ticks =
        cluster::generateCandidateTicks(rate, 11, horizon, surges);

    auto countIn = [&](Tick lo, Tick hi) {
        return std::count_if(ticks.begin(), ticks.end(),
                             [&](Tick t) { return t >= lo && t < hi; });
    };
    // Equal-length windows: the surge window should hold ~3x the
    // arrivals of a calm window of the same length.
    auto calm = countIn(1500000, 2000000);
    auto surged = countIn(500000, 1000000);
    EXPECT_GT(surged, 2 * calm);
    EXPECT_LT(surged, 4 * calm);

    // Determinism: same inputs, same stream.
    auto again =
        cluster::generateCandidateTicks(rate, 11, horizon, surges);
    EXPECT_EQ(ticks, again);

    // Arrivals stay strictly ordered and the stream covers the horizon.
    EXPECT_TRUE(std::is_sorted(ticks.begin(), ticks.end()));
    EXPECT_GT(ticks.back(), horizon);
}

// ---------------------------------------------------------------------
// ControlPlane behaviour.

TEST(ControlPlane, TaggingOnlySpecRoutesIdenticallyToTheRouter)
{
    // A spec with only priority tagging enabled must not perturb
    // routing: the control plane's traces are byte-identical to the
    // bare router's. This is the no-op-control-plane identity that
    // keeps golden digests valid.
    cluster::ResilienceSpec spec;
    spec.admission.background_fraction = 0.25;
    ASSERT_TRUE(spec.enabled());

    const double mu = 1e-3;
    const Tick horizon = 4000000;
    cluster::ControlPlane cp(spec,
                             cluster::RoutingPolicy::JoinShortestQueue,
                             3, mu, 64, {});
    auto a = cp.route(2.4e-3, 5, horizon);

    cluster::Router router(cluster::RoutingPolicy::JoinShortestQueue, 3,
                           mu, 64, {});
    auto b = router.route(2.4e-3, 5, horizon);

    ASSERT_EQ(a.traces.size(), b.traces.size());
    for (std::size_t r = 0; r < a.traces.size(); ++r)
        EXPECT_EQ(a.traces[r], b.traces[r]) << "replica " << r;
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.shed, b.shed);
    // Tagging only fills the offered/dispatched split.
    EXPECT_GT(cp.stats().dispatched_background, 0u);
    EXPECT_LT(cp.stats().dispatched_background, cp.stats().dispatched);
}

TEST(ControlPlane, RetriesRecoverAFleetWideOutage)
{
    cluster::ResilienceSpec spec;
    spec.retry.enabled = true;
    spec.retry.max_attempts = 6;
    spec.retry.max_budget = 1e6;
    spec.retry.base_backoff_cycles = 200000;
    spec.retry.backoff_multiplier = 2.0;

    const double mu = 1e-3;
    const Tick horizon = 4000000;
    // Fleet-wide outage mid-run, far enough from the horizon that
    // every backed-off retry lands inside the run.
    std::vector<cluster::RouterOutage> outages{
        {0, 1000000, 1400000}, {1, 1000000, 1400000}};
    cluster::ControlPlane cp(spec, cluster::RoutingPolicy::RoundRobin,
                             2, mu, 64, outages);
    auto res = cp.route(1.6e-3, 9, horizon);
    const auto &s = cp.stats();

    EXPECT_GT(s.retry_attempts, 0u);
    EXPECT_GT(s.retry_recovered, 0u);
    EXPECT_EQ(s.outage_shed, 0u);
    EXPECT_EQ(s.retry_shed, 0u);
    EXPECT_EQ(res.shed, 0u);

    // The same run without retries sheds the outage window.
    cluster::ResilienceSpec off;
    off.admission.background_fraction = 0.0;
    off.admission.deadline_cycles = 1; // keep the plane enabled
    cluster::ControlPlane bare(off, cluster::RoutingPolicy::RoundRobin,
                               2, mu, 64, outages);
    auto base = bare.route(1.6e-3, 9, horizon);
    EXPECT_GT(base.shed, 0u);
    EXPECT_EQ(base.generated, bare.stats().dispatched + base.shed);
    // What the shed-only plane dropped is what retries recovered.
    EXPECT_EQ(base.shed, s.retry_recovered);
}

TEST(ControlPlane, ConservationIdentitiesHoldUnderChaos)
{
    cluster::ResilienceSpec spec;
    spec.admission.policy = cluster::AdmissionPolicy::PriorityShed;
    spec.admission.background_fraction = 0.3;
    spec.admission.background_watermark = 1.0;
    spec.admission.inference_watermark = 6.0;
    spec.retry.enabled = true;
    spec.retry.max_attempts = 3;
    spec.retry.max_budget = 64.0;
    spec.retry.base_backoff_cycles = 50000;
    spec.hedge.enabled = true;
    spec.hedge.latency_factor = 1.0;
    spec.hedge.window = 64;
    spec.hedge.min_samples = 16;
    spec.breaker.enabled = true;
    spec.breaker.probe_interval_cycles = 10000;
    spec.breaker.cooldown_cycles = 200000;

    const double mu = 1e-3;
    const Tick horizon = 6000000;
    std::vector<cluster::RouterOutage> outages{
        {0, 1000000, 1600000},
        {1, 1000000, 1600000},
        {2, 3000000, 3300000}};
    std::vector<cluster::RouterSurge> surges{
        {2000000, 2600000, 2.5}};

    for (std::uint64_t seed : {1ull, 17ull, 99ull}) {
        cluster::ControlPlane cp(
            spec, cluster::RoutingPolicy::JoinShortestQueue, 3, mu, 64,
            outages);
        // Offered rate 2.4x one replica's capacity across 3 replicas.
        auto res = cp.route(2.4e-3, seed, horizon, surges);
        const auto &s = cp.stats();

        // Every generated candidate either dispatched or shed.
        EXPECT_EQ(res.generated, s.dispatched + s.totalShed())
            << "seed " << seed;
        // Every admitted candidate dispatched or died post-admission.
        EXPECT_EQ(s.admission.admitted,
                  s.dispatched + s.retry_shed + s.outage_shed)
            << "seed " << seed;
        // Replica assignments are dispatches plus hedge duplicates.
        std::uint64_t assigned = 0;
        for (auto a : res.assigned)
            assigned += a;
        EXPECT_EQ(assigned, s.dispatched + s.hedges_issued)
            << "seed " << seed;
        // Priority split covers all sheds.
        EXPECT_EQ(s.totalShed(),
                  s.shed_background_total + s.shed_inference_total)
            << "seed " << seed;
        // Hedge wins cannot exceed hedges; recoveries need attempts.
        EXPECT_LE(s.hedge_wins, s.hedges_issued);
        EXPECT_LE(s.retry_recovered, s.retry_attempts);
        // The dispatch heap was reserved to the candidate count up
        // front; retries re-push while draining, so even under chaos
        // the routing pass must stay allocation-free.
        EXPECT_EQ(s.dispatch_heap_reallocs, 0u) << "seed " << seed;
        EXPECT_LE(s.dispatch_heap_high_water,
                  static_cast<std::size_t>(res.generated))
            << "seed " << seed;
    }
}

TEST(ControlPlane, DispatchHeapNeverReallocatesMidRoute)
{
    // Pin of the reserve contract on the retry-heavy path: a
    // fleet-wide outage maximizes retry re-pushes into the heap while
    // it drains, which is exactly when an under-reserved heap would
    // grow. The candidate count must remain the high-water mark.
    cluster::ResilienceSpec spec;
    spec.retry.enabled = true;
    spec.retry.max_attempts = 6;
    spec.retry.max_budget = 1e6;
    spec.retry.base_backoff_cycles = 100000;

    const double mu = 1e-3;
    const Tick horizon = 4000000;
    std::vector<cluster::RouterOutage> outages{
        {0, 500000, 1500000}, {1, 500000, 1500000}};
    cluster::ControlPlane cp(spec, cluster::RoutingPolicy::RoundRobin,
                             2, mu, 64, outages);
    auto res = cp.route(1.6e-3, 7, horizon);
    const auto &s = cp.stats();
    EXPECT_GT(s.retry_attempts, 0u);
    EXPECT_EQ(s.dispatch_heap_reallocs, 0u);
    EXPECT_GT(s.dispatch_heap_high_water, 0u);
    EXPECT_LE(s.dispatch_heap_high_water,
              static_cast<std::size_t>(res.generated));
}

TEST(ControlPlane, HedgeBudgetCapsDuplicates)
{
    cluster::ResilienceSpec spec;
    spec.hedge.enabled = true;
    spec.hedge.latency_factor = 1.0;
    spec.hedge.window = 64;
    spec.hedge.min_samples = 16;
    spec.hedge.max_hedge_fraction = 0.05;

    const double mu = 1e-3;
    cluster::ControlPlane cp(spec, cluster::RoutingPolicy::RoundRobin,
                             3, mu, 64, {});
    // Heavy overload: without the budget, most estimates beat the
    // window p99 and hedging would run away.
    cp.route(6e-3, 3, 4000000);
    const auto &s = cp.stats();
    EXPECT_GT(s.hedges_issued, 0u);
    EXPECT_LE(static_cast<double>(s.hedges_issued),
              0.05 * static_cast<double>(s.dispatched) + 1.0);
}

} // namespace
} // namespace equinox

/**
 * @file
 * Unit tests of the common/arena.hh allocation primitives the simulator
 * hot path runs on: ObjectPool (construct-once batch storage), Ring
 * (the pending-arrivals queue), and the callback arena behind the event
 * kernel's heap-fallback callbacks.
 *
 * Determinism matters more than speed here: reuse after reset() must
 * hand out objects in the exact order a fresh pool would, because batch
 * pointers feed scheduling decisions and back-to-back runs must be
 * byte-identical to first runs. The asan preset re-runs this suite to
 * prove the recycling schemes are leak- and UAF-clean.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <deque>
#include <vector>

#include "common/arena.hh"
#include "common/random.hh"
#include "sim_digest.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace
{

using common::ObjectPool;
using common::Ring;

// ---------------------------------------------------------------------
// ObjectPool
// ---------------------------------------------------------------------

struct Payload
{
    std::vector<int> grown;
    int tag = 0;
};

TEST(ObjectPool, AcquireConstructsOnceAndReuses)
{
    ObjectPool<Payload> pool;
    Payload *a = pool.acquire();
    a->grown.resize(64);
    a->tag = 1;
    pool.release(a);

    Payload *b = pool.acquire();
    EXPECT_EQ(b, a); // freelist reuse, most recently released first
    // Construct-once: internal capacity survives the round trip.
    EXPECT_GE(b->grown.capacity(), 64u);
    EXPECT_EQ(pool.totalObjects(), 1u);
    EXPECT_EQ(pool.acquires(), 2u);
    EXPECT_EQ(pool.reuses(), 1u);
}

TEST(ObjectPool, ResetRestoresCanonicalAcquireOrder)
{
    ObjectPool<Payload> pool;
    std::vector<Payload *> first;
    for (int i = 0; i < 5; ++i)
        first.push_back(pool.acquire());

    // Release in a scrambled order, then reset: the next acquire
    // sequence must match the fresh pool's exactly (storage order),
    // not the scrambled release order.
    pool.release(first[3]);
    pool.release(first[0]);
    pool.release(first[4]);
    pool.release(first[1]);
    pool.release(first[2]);
    pool.reset();

    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(pool.acquire(), first[i]) << "position " << i;
    EXPECT_EQ(pool.totalObjects(), 5u);
}

TEST(ObjectPool, ResetReturnsLiveObjectsToo)
{
    ObjectPool<Payload> pool;
    (void)pool.acquire(); // left live: a batch the horizon cut off
    Payload *b = pool.acquire();
    pool.release(b);
    EXPECT_EQ(pool.live(), 1u);
    pool.reset();
    EXPECT_EQ(pool.live(), 0u);
    // Both objects acquirable again, canonical order.
    Payload *x = pool.acquire();
    Payload *y = pool.acquire();
    EXPECT_NE(x, y);
    EXPECT_EQ(pool.totalObjects(), 2u);
}

TEST(ObjectPool, HighWaterTracksPeakLiveCount)
{
    ObjectPool<Payload> pool;
    Payload *a = pool.acquire();
    Payload *b = pool.acquire();
    Payload *c = pool.acquire();
    EXPECT_EQ(pool.highWater(), 3u);
    pool.release(a);
    pool.release(b);
    pool.release(c);
    (void)pool.acquire();
    EXPECT_EQ(pool.highWater(), 3u); // peak, not current
    EXPECT_EQ(pool.live(), 1u);
    EXPECT_GT(pool.bytesReserved(), 0u);
}

// ---------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------

TEST(Ring, MatchesDequeUnderRandomChurn)
{
    Ring<std::uint64_t> ring;
    std::deque<std::uint64_t> ref;
    Rng rng(99);
    for (int step = 0; step < 20000; ++step) {
        bool push = ref.empty() || rng.uniformInt(0, 99) < 55;
        if (push) {
            std::uint64_t v = rng.uniformInt(0, 1u << 30);
            ring.push_back(v);
            ref.push_back(v);
        } else {
            ASSERT_EQ(ring.front(), ref.front());
            ring.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(ring.size(), ref.size());
        ASSERT_EQ(ring.empty(), ref.empty());
        if (!ref.empty())
            ASSERT_EQ(ring.front(), ref.front());
    }
}

TEST(Ring, ClearKeepsCapacity)
{
    Ring<int> ring;
    for (int i = 0; i < 100; ++i)
        ring.push_back(i);
    std::size_t cap = ring.capacity();
    EXPECT_GE(cap, 100u);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), cap);
    ring.push_back(7);
    EXPECT_EQ(ring.front(), 7);
}

TEST(Ring, WrapsAcrossGrowth)
{
    Ring<int> ring;
    // Force a wrapped state, then grow: linearization must preserve
    // FIFO order.
    for (int i = 0; i < 16; ++i)
        ring.push_back(i);
    for (int i = 0; i < 10; ++i)
        ring.pop_front();
    for (int i = 16; i < 40; ++i)
        ring.push_back(i); // grows while head is mid-buffer
    for (int i = 10; i < 40; ++i) {
        ASSERT_EQ(ring.front(), i);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------
// Callback arena
// ---------------------------------------------------------------------

TEST(CallbackArena, ReusesFreedBlocks)
{
    auto before = common::callbackArenaStats();
    void *a = common::callbackArenaAlloc(48, 8);
    ASSERT_NE(a, nullptr);
    std::memset(a, 0xab, 48);
    common::callbackArenaFree(a, 48, 8);
    // Same size class: the freed node comes straight back.
    void *b = common::callbackArenaAlloc(40, 8);
    EXPECT_EQ(b, a);
    common::callbackArenaFree(b, 40, 8);
    auto after = common::callbackArenaStats();
    EXPECT_GE(after.allocs - before.allocs, 2u);
    EXPECT_GE(after.reuses - before.reuses, 1u);
}

TEST(CallbackArena, AlignmentHonored)
{
    for (std::size_t align : {8u, 16u}) {
        for (std::size_t size : {1u, 63u, 64u, 65u, 512u, 1024u}) {
            void *p = common::callbackArenaAlloc(size, align);
            ASSERT_NE(p, nullptr);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
                << "size " << size << " align " << align;
            std::memset(p, 0x5a, size); // asan: fully addressable
            common::callbackArenaFree(p, size, align);
        }
    }
}

TEST(CallbackArena, OversizeFallsBackToOperatorNew)
{
    auto before = common::callbackArenaStats();
    void *p = common::callbackArenaAlloc(4096, 8);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0x11, 4096);
    common::callbackArenaFree(p, 4096, 8);
    struct alignas(64) Wide
    {
        unsigned char bytes[64];
    };
    void *q = common::callbackArenaAlloc(sizeof(Wide), alignof(Wide));
    ASSERT_NE(q, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q) % 64, 0u);
    common::callbackArenaFree(q, sizeof(Wide), alignof(Wide));
    auto after = common::callbackArenaStats();
    EXPECT_GE(after.fallbacks - before.fallbacks, 2u);
}

// ---------------------------------------------------------------------
// Arena-backed simulation end-to-end
// ---------------------------------------------------------------------

TEST(ArenaSim, BackToBackRunsReuseBatchesAndStayIdentical)
{
    // Two identical runs on one accelerator: the second run must be
    // digest-identical to the first (reset() restored canonical order)
    // and must serve its batches from the freelist.
    auto cfg = testutil::smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(testutil::tinyRnn()));
    sim::RunSpec spec;
    spec.warmup_requests = 25;
    spec.measure_requests = 300;
    spec.seed = 11;
    spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();

    auto first = accel.run(spec);
    stats::StatRegistry reg;
    accel.registerStats(reg);
    double objects_after_first = reg.value("arena.batch_objects");
    EXPECT_GT(first.batches_formed, 0u);
    EXPECT_GT(objects_after_first, 0.0);

    auto second = accel.run(spec);
    EXPECT_EQ(testutil::digestOf(second), testutil::digestOf(first));
    EXPECT_GT(reg.value("arena.batch_reuses"), 0.0);
    // Steady state: the second identical run constructs nothing new.
    EXPECT_EQ(reg.value("arena.batch_objects"), objects_after_first);
    EXPECT_GT(reg.value("arena.batch_high_water"), 0.0);
}

} // namespace
} // namespace equinox

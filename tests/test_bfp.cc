/**
 * @file
 * Unit and property tests for block floating point (the hbfp8 substrate).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "arith/bfp.hh"
#include "common/random.hh"

namespace equinox
{
namespace arith
{
namespace
{

TEST(BfpFormat, Hbfp8Parameters)
{
    BfpFormat f = hbfp8Format();
    EXPECT_EQ(f.mantissa_bits, 8u);
    EXPECT_EQ(f.exponent_bits, 12u);
    EXPECT_EQ(f.accumulator_bits, 25u);
    EXPECT_EQ(f.mantissaMax(), 127);
    EXPECT_EQ(f.exponentMax(), 2047);
    EXPECT_EQ(f.exponentMin(), -2048);
}

TEST(BfpBlock, ZeroBlock)
{
    std::vector<float> v(16, 0.0f);
    auto blk = BfpBlock::quantize(v, hbfp8Format());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(blk.dequantize(i), 0.0f);
}

TEST(BfpBlock, QuantizationErrorBound)
{
    Rng rng(41);
    BfpFormat fmt = hbfp8Format();
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> v(64);
        double scale = std::pow(10.0, rng.uniform(-3.0, 3.0));
        for (auto &x : v)
            x = static_cast<float>(rng.normal(0.0, scale));
        auto blk = BfpBlock::quantize(v, fmt);
        double step = BfpBlock::quantizationStep(blk.exponent(), fmt);
        auto back = blk.dequantize();
        for (std::size_t i = 0; i < v.size(); ++i) {
            // Round-to-nearest leaves at most half a step of error.
            EXPECT_LE(std::abs(back[i] - v[i]), 0.5 * step + 1e-12)
                << "trial " << trial << " elem " << i;
        }
    }
}

TEST(BfpBlock, LargestMagnitudeElementKeepsSign)
{
    std::vector<float> v{0.1f, -3.0f, 0.5f};
    auto blk = BfpBlock::quantize(v, hbfp8Format());
    EXPECT_LT(blk.dequantize(1), 0.0f);
    EXPECT_GT(blk.dequantize(2), 0.0f);
}

TEST(BfpBlock, SharedExponentFollowsMaxAbs)
{
    // Max abs 6.0 -> exponent 3 (6 < 8 = 2^3).
    std::vector<float> v{6.0f, 0.01f};
    auto blk = BfpBlock::quantize(v, hbfp8Format());
    EXPECT_EQ(blk.exponent(), 3);
    // Small elements lose precision to the shared exponent; error is
    // bounded by half the block step.
    double step = BfpBlock::quantizationStep(3, hbfp8Format());
    EXPECT_LE(std::abs(blk.dequantize(1) - 0.01), 0.5 * step + 1e-12);
}

TEST(BfpBlock, PowerOfTwoValuesExact)
{
    // Values that are exact multiples of the step survive quantization.
    std::vector<float> v{1.0f, 0.5f, 0.25f, -0.75f};
    auto blk = BfpBlock::quantize(v, hbfp8Format());
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_EQ(blk.dequantize(i), v[i]) << i;
}

TEST(BfpBlock, DotMatchesDequantizedDot)
{
    Rng rng(43);
    BfpFormat fmt = hbfp8Format();
    for (int trial = 0; trial < 100; ++trial) {
        std::size_t len = 1 + rng.uniformInt(0, 127);
        std::vector<float> a(len), b(len);
        for (auto &x : a)
            x = static_cast<float>(rng.normal(0.0, 1.0));
        for (auto &x : b)
            x = static_cast<float>(rng.normal(0.0, 1.0));
        auto ba = BfpBlock::quantize(a, fmt);
        auto bb = BfpBlock::quantize(b, fmt);
        // No saturation expected at this length/scale, so the integer
        // datapath must agree exactly with the dequantized dot product.
        double expect = 0.0;
        auto da = ba.dequantize();
        auto db = bb.dequantize();
        for (std::size_t i = 0; i < len; ++i)
            expect += static_cast<double>(da[i]) *
                      static_cast<double>(db[i]);
        EXPECT_NEAR(BfpBlock::dot(ba, bb), expect,
                    1e-6 * std::max(1.0, std::abs(expect)));
    }
}

TEST(BfpBlock, DotApproximatesFp32Dot)
{
    Rng rng(47);
    BfpFormat fmt = hbfp8Format();
    std::size_t len = 256;
    std::vector<float> a(len), b(len);
    for (auto &x : a)
        x = static_cast<float>(rng.normal(0.0, 1.0));
    for (auto &x : b)
        x = static_cast<float>(rng.normal(0.0, 1.0));
    double exact = 0.0;
    for (std::size_t i = 0; i < len; ++i)
        exact += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    float approx =
        BfpBlock::dot(BfpBlock::quantize(a, fmt),
                      BfpBlock::quantize(b, fmt));
    // 8-bit mantissas: relative error on the order of a percent of the
    // operand norms.
    double norm = std::sqrt(static_cast<double>(len));
    EXPECT_NEAR(approx, exact, 0.05 * norm);
}

TEST(BfpBlock, AccumulatorSaturates)
{
    // A long block of maximal same-sign products exceeds 2^24 and must
    // clip at the 25-bit accumulator limit instead of wrapping.
    BfpFormat fmt = hbfp8Format();
    // 0.99 quantizes to mantissa 127; 127*127*2048 ~ 3.3e7 > 2^24-1.
    std::size_t len = 2048;
    std::vector<float> v(len, 0.99f);
    auto blk = BfpBlock::quantize(v, fmt);
    float dot = BfpBlock::dot(blk, blk);
    // Saturated result is positive and below the unsaturated value.
    double unsaturated = 0.0;
    auto d = blk.dequantize();
    for (std::size_t i = 0; i < len; ++i)
        unsaturated += static_cast<double>(d[i]) * d[i];
    EXPECT_GT(dot, 0.0f);
    EXPECT_LT(dot, unsaturated);
    // Exactly the clip value: (2^24 - 1) * 2^(e_a + e_b - 14).
    double clip = std::ldexp(static_cast<double>((1 << 24) - 1),
                             blk.exponent() * 2 - 14);
    EXPECT_FLOAT_EQ(dot, static_cast<float>(clip));
}

TEST(BfpBlock, NarrowerMantissaHasLargerError)
{
    Rng rng(53);
    std::vector<float> v(128);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, 1.0));

    BfpFormat f8 = hbfp8Format();
    BfpFormat f4{4, 12, 25};
    auto b8 = BfpBlock::quantize(v, f8);
    auto b4 = BfpBlock::quantize(v, f4);
    double e8 = 0.0, e4 = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
        e8 += std::abs(b8.dequantize(i) - v[i]);
        e4 += std::abs(b4.dequantize(i) - v[i]);
    }
    EXPECT_LT(e8, e4);
}

} // namespace
} // namespace arith
} // namespace equinox

// Appended: saturating fixed-point accumulator tests.

#include "arith/fixed_point.hh"

namespace equinox
{
namespace arith
{
namespace
{

TEST(SatAccumulator, BasicAccumulation)
{
    SatAccumulator<25> acc;
    acc.add(100);
    acc.mac(50, -3);
    EXPECT_EQ(acc.value(), 100 - 150);
    EXPECT_FALSE(acc.saturated());
    acc.reset();
    EXPECT_EQ(acc.value(), 0);
}

TEST(SatAccumulator, SaturatesAtWidthLimits)
{
    SatAccumulator<25> acc;
    EXPECT_EQ(SatAccumulator<25>::kMax, (1 << 24) - 1);
    EXPECT_EQ(SatAccumulator<25>::kMin, -(1 << 24));
    acc.add(SatAccumulator<25>::kMax);
    acc.add(10); // clips instead of wrapping
    EXPECT_EQ(acc.value(), SatAccumulator<25>::kMax);
    EXPECT_TRUE(acc.saturated());

    SatAccumulator<25> neg;
    neg.add(SatAccumulator<25>::kMin);
    neg.add(-1);
    EXPECT_EQ(neg.value(), SatAccumulator<25>::kMin);
    EXPECT_TRUE(neg.saturated());
}

TEST(SatAccumulator, RecoversFromSaturationDirectionally)
{
    // After clipping high, subtracting moves the value down again (the
    // hardware keeps accumulating from the clipped value).
    SatAccumulator<8> acc; // range [-128, 127]
    acc.add(127);
    acc.add(100);
    EXPECT_EQ(acc.value(), 127);
    acc.add(-27);
    EXPECT_EQ(acc.value(), 100);
}

TEST(SatAccumulator, NarrowWidthMacSweep)
{
    // Property: a width-W accumulator equals the clamped wide sum.
    SatAccumulator<12> acc; // range [-2048, 2047]
    std::int64_t wide = 0;
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        auto a = static_cast<std::int32_t>(rng.uniformInt(0, 255)) - 128;
        auto b = static_cast<std::int32_t>(rng.uniformInt(0, 255)) - 128;
        acc.mac(a, b);
        wide += static_cast<std::int64_t>(a) * b;
        wide = std::clamp<std::int64_t>(wide, -2048, 2047);
        EXPECT_EQ(acc.value(), wide) << "step " << i;
    }
}

TEST(ClampToBits, SymmetricRange)
{
    EXPECT_EQ(clampToBits(1000, 8), 127);
    EXPECT_EQ(clampToBits(-1000, 8), -127); // symmetric, as quantizers
    EXPECT_EQ(clampToBits(100, 8), 100);
    EXPECT_EQ(clampToBits(-100, 8), -100);
    EXPECT_EQ(clampToBits(0, 8), 0);
}

} // namespace
} // namespace arith
} // namespace equinox

/**
 * @file
 * Cluster-level tests of the overload-resilience control plane:
 *
 *  - the resilience + chaos path is byte-identical across jobs counts
 *    and across repeated runs (determinism),
 *  - a tagging-only control plane leaves the replica simulations
 *    byte-identical to the bare router (the no-op identity golden
 *    digests rely on),
 *  - conservation: every generated candidate is dispatched or shed,
 *    every admitted request retires or is in flight at the horizon,
 *  - the CI-enforced acceptance criterion: under the
 *    flash_crowd_outage chaos scenario at equal offered load, the
 *    full control plane beats the shed-only baseline on BOTH
 *    inference availability and goodput.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster/sweep.hh"
#include "cluster_digest.hh"
#include "core/experiment.hh"
#include "fault/chaos_plan.hh"
#include "obs/metrics_snapshot.hh"

namespace equinox
{
namespace
{

constexpr double kHorizonS = 0.02;

core::ExperimentOptions
chaosOptions(std::size_t jobs)
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    // Chaos windows sit mid-horizon, so the measured window must span
    // the whole run instead of closing at a request count.
    opts.measure_requests = 1u << 30;
    opts.min_measure_s = kHorizonS;
    opts.seed = 17;
    opts.max_sim_s = kHorizonS;
    opts.jobs = jobs;
    return opts;
}

/** Priority tags + deadline accounting only: the shed-only baseline. */
cluster::ResilienceSpec
baselineSpec(Tick deadline_cycles)
{
    cluster::ResilienceSpec rs;
    rs.admission.policy = cluster::AdmissionPolicy::None;
    rs.admission.background_fraction = 0.3;
    rs.admission.deadline_cycles = deadline_cycles;
    return rs;
}

/** The full control plane, sized for the 0.02 s test horizon. */
cluster::ResilienceSpec
resilientSpec(Tick deadline_cycles)
{
    cluster::ResilienceSpec rs = baselineSpec(deadline_cycles);
    rs.admission.policy = cluster::AdmissionPolicy::PriorityShed;
    rs.admission.background_watermark = 2.0;
    rs.admission.inference_watermark = 1e6;
    rs.retry.enabled = true;
    rs.retry.max_attempts = 6;
    rs.retry.max_budget = 65536.0;
    rs.retry.budget_ratio = 0.2;
    // 0.3 ms doubling backoff at 100 MHz: the schedule spans the
    // scenario's 1.2 ms fleet blackout within max_attempts.
    rs.retry.base_backoff_cycles = 30000;
    rs.retry.backoff_multiplier = 2.0;
    rs.retry.jitter_frac = 0.25;
    rs.hedge.enabled = true;
    rs.hedge.latency_factor = 1.0;
    rs.hedge.window = 256;
    rs.hedge.min_samples = 64;
    rs.hedge.max_hedge_fraction = 0.01;
    rs.breaker.enabled = true;
    rs.breaker.trip_failures = 4;
    rs.breaker.probe_interval_cycles = 20000;  // 0.2 ms
    rs.breaker.cooldown_cycles = 50000;        // 0.5 ms
    rs.breaker.halfopen_probes = 2;
    rs.shed_training_under_overload = true;
    rs.training_shed_backlog = 4.0;
    return rs;
}

cluster::ClusterPointResult
runPoint(const cluster::ClusterSpec &cspec, double load,
         std::size_t jobs)
{
    auto opts = chaosOptions(jobs);
    cluster::Cluster fleet(testutil::smallConfig(), cspec);
    return fleet.run(load, opts, core::compileWorkload(
                                     testutil::smallConfig(), opts));
}

TEST(ResilienceCluster, ChaosRunIsIdenticalAcrossJobsCounts)
{
    cluster::ClusterSpec cspec;
    cspec.replicas = 4;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.resilience = resilientSpec(200000);
    cspec.chaos = fault::chaosScenario("flash_crowd_outage", kHorizonS);

    auto serial = runPoint(cspec, 0.8, 1);
    auto fanout = runPoint(cspec, 0.8, 4);
    EXPECT_EQ(testutil::digestOf(serial), testutil::digestOf(fanout));
    EXPECT_TRUE(serial.control_plane);
    EXPECT_GT(serial.resilience.dispatched, 0u);
}

TEST(ResilienceCluster, ChaosRunIsDeterministic)
{
    cluster::ClusterSpec cspec;
    cspec.replicas = 3;
    cspec.policy = cluster::RoutingPolicy::RoundRobin;
    cspec.resilience = resilientSpec(0);
    cspec.chaos = fault::chaosScenario("replica_churn", kHorizonS);

    auto a = runPoint(cspec, 0.7, 2);
    auto b = runPoint(cspec, 0.7, 2);
    EXPECT_EQ(testutil::digestOf(a), testutil::digestOf(b));
}

TEST(ResilienceCluster, TaggingOnlyControlPlaneLeavesReplicasUntouched)
{
    // Priority tagging alone must not perturb the replica
    // simulations: same traces, same latency samples, same per-replica
    // results as the bare router. This is the no-op identity that
    // keeps the golden digests of the plain cluster path valid.
    cluster::ClusterSpec plain;
    plain.replicas = 3;
    plain.policy = cluster::RoutingPolicy::JoinShortestQueue;

    cluster::ClusterSpec tagged = plain;
    tagged.resilience.admission.background_fraction = 0.3;
    ASSERT_TRUE(tagged.resilience.enabled());

    auto a = runPoint(plain, 0.6, 2);
    auto b = runPoint(tagged, 0.6, 2);

    EXPECT_FALSE(a.control_plane);
    EXPECT_TRUE(b.control_plane);
    ASSERT_EQ(a.per_replica.size(), b.per_replica.size());
    for (std::size_t r = 0; r < a.per_replica.size(); ++r) {
        testutil::ResultDigest da, db;
        testutil::foldSim(da, a.per_replica[r].sim);
        testutil::foldSim(db, b.per_replica[r].sim);
        EXPECT_EQ(da.value(), db.value()) << "replica " << r;
        EXPECT_EQ(a.per_replica[r].assigned_candidates,
                  b.per_replica[r].assigned_candidates);
    }
    EXPECT_EQ(a.merged_latency_cycles.count(),
              b.merged_latency_cycles.count());
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
}

TEST(ResilienceCluster, ConservationHoldsUnderChaos)
{
    for (const char *scenario :
         {"flash_crowd_outage", "replica_churn", "flash_crowd"}) {
        cluster::ClusterSpec cspec;
        cspec.replicas = 4;
        cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
        cspec.resilience = resilientSpec(200000);
        cspec.chaos = fault::chaosScenario(scenario, kHorizonS);

        auto r = runPoint(cspec, 0.8, 4);
        const auto &s = r.resilience;

        // Candidate conservation through the control plane.
        EXPECT_EQ(r.generated_candidates,
                  s.dispatched + s.totalShed())
            << scenario;
        EXPECT_EQ(s.admission.admitted,
                  s.dispatched + s.retry_shed + s.outage_shed)
            << scenario;
        EXPECT_EQ(s.totalShed(),
                  s.shed_background_total + s.shed_inference_total)
            << scenario;

        // Request conservation through the replica simulations:
        // admitted == retired + in-flight at the horizon.
        EXPECT_EQ(r.admitted_requests,
                  r.retired_requests + r.inflight_requests)
            << scenario;

        // Availability headlines stay inside [0, 1].
        EXPECT_GE(r.request_availability, 0.0);
        EXPECT_LE(r.request_availability, 1.0);
        EXPECT_GE(r.inference_availability, 0.0);
        EXPECT_LE(r.inference_availability, 1.0);
        EXPECT_LE(r.deadline_met, r.retired_requests);
    }
}

TEST(ResilienceCluster, ControlPlaneBeatsShedOnlyBaselineUnderChaos)
{
    // THE acceptance criterion: under flash crowd + fleet blackout at
    // equal offered load, the control plane must deliver strictly
    // higher inference availability AND strictly higher goodput than
    // the shed-only baseline (bench/overload_resilience records the
    // same comparison into BENCH_overload_resilience.json).

    // Anchor the deadline on the calm fleet's p99 so the test tracks
    // the workload instead of hard-coding cycles.
    cluster::ClusterSpec calm;
    calm.replicas = 4;
    calm.policy = cluster::RoutingPolicy::JoinShortestQueue;
    auto calm_point = runPoint(calm, 0.8, 4);
    ASSERT_GT(calm_point.p99_latency_s, 0.0);
    const double f = testutil::smallConfig().frequency_hz;
    const Tick deadline =
        static_cast<Tick>(4.0 * calm_point.p99_latency_s * f);

    auto runMode = [&](const cluster::ResilienceSpec &rs) {
        cluster::ClusterSpec cspec;
        cspec.replicas = 4;
        cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
        cspec.resilience = rs;
        cspec.chaos =
            fault::chaosScenario("flash_crowd_outage", kHorizonS);
        return runPoint(cspec, 0.8, 4);
    };

    auto base = runMode(baselineSpec(deadline));
    auto resilient = runMode(resilientSpec(deadline));

    // The chaos scenario must actually hurt the baseline...
    EXPECT_GT(base.resilience.outage_shed, 0u);
    EXPECT_LT(base.inference_availability, 1.0);
    // ...and the control plane must strictly win on both axes.
    EXPECT_GT(resilient.inference_availability,
              base.inference_availability);
    EXPECT_GT(resilient.goodput_rps, base.goodput_rps);
    // The win comes from the mechanisms, not accounting drift.
    EXPECT_GT(resilient.resilience.retry_recovered, 0u);
    EXPECT_GT(resilient.resilience.breaker_opens, 0u);
}

TEST(ResilienceCluster, SnapshotResilienceSectionRoundTrips)
{
    cluster::ClusterSpec cspec;
    cspec.replicas = 3;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.resilience = resilientSpec(200000);
    cspec.chaos = fault::chaosScenario("flash_crowd", kHorizonS);
    auto r = runPoint(cspec, 0.8, 3);

    obs::MetricsSnapshot snap;
    core::addResiliencePoint(snap, "test", r);
    auto dumped = snap.toJson();
    EXPECT_NE(dumped.find("\"resilience\""), std::string::npos);
    EXPECT_NE(dumped.find("\"inference_availability\""),
              std::string::npos);
    EXPECT_NE(dumped.find("\"goodput_rps\""), std::string::npos);
    EXPECT_NE(dumped.find("\"hedge\""), std::string::npos);
    EXPECT_NE(dumped.find("\"breaker\""), std::string::npos);
}

} // namespace
} // namespace equinox

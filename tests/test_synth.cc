/**
 * @file
 * Tests for the synthesis proxy: component coverage, totals, and the
 * paper's Table 3 overhead claims.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "synth/synthesis.hh"

namespace equinox
{
namespace synth
{
namespace
{

TEST(Synthesis, ComponentsCoverTable3Rows)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    for (const char *name :
         {"MMU", "DRAM Interface", "SIMD Unit", "Weight Buffer",
          "Activation Buffer", "Request Dispatcher",
          "Instruction Dispatcher", "Others"}) {
        EXPECT_GT(rep.component(name).area_mm2, 0.0) << name;
        EXPECT_GT(rep.component(name).power_w, 0.0) << name;
    }
}

TEST(Synthesis, TotalsAreComponentSums)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    double area = 0.0, power = 0.0;
    for (const auto &c : rep.components) {
        area += c.area_mm2;
        power += c.power_w;
    }
    EXPECT_NEAR(rep.total_area, area, 1e-9);
    EXPECT_NEAR(rep.total_power, power, 1e-9);
}

TEST(Synthesis, Equinox500MatchesTable3Bands)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    // Table 3: MMU 185.6 mm^2 / 36.8 W; total 313.9 mm^2 / 85.9 W.
    EXPECT_NEAR(rep.component("MMU").area_mm2, 185.6, 20.0);
    EXPECT_NEAR(rep.component("MMU").power_w, 36.8, 6.0);
    EXPECT_NEAR(rep.component("DRAM Interface").area_mm2, 46.9, 1e-9);
    EXPECT_NEAR(rep.component("DRAM Interface").power_w, 28.6, 1e-9);
    EXPECT_NEAR(rep.component("Weight Buffer").area_mm2, 45.96, 6.0);
    EXPECT_NEAR(rep.component("Activation Buffer").area_mm2, 18.27, 3.0);
    EXPECT_NEAR(rep.total_area, 313.85, 35.0);
    EXPECT_NEAR(rep.total_power, 85.91, 12.0);
    // MMU + DRAM + buffers dominate (~95% area / ~82% power).
    double big_area = rep.component("MMU").area_mm2 +
                      rep.component("DRAM Interface").area_mm2 +
                      rep.component("Weight Buffer").area_mm2 +
                      rep.component("Activation Buffer").area_mm2;
    EXPECT_GT(big_area / rep.total_area, 0.85);
}

TEST(Synthesis, ControllerOverheadBelowOnePercent)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    EXPECT_LT(rep.controller_area_frac, 0.01);
    EXPECT_LT(rep.controller_power_frac, 0.01);
    EXPECT_GT(rep.controller_area_frac, 0.0);
}

TEST(Synthesis, EncodingOverheadMatchesPaperClaim)
{
    // The SIMD unit (bfloat16 ALUs + register file for HBFP training):
    // ~13% power and ~4% area of the accelerator.
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    EXPECT_NEAR(rep.encoding_power_frac, 0.13, 0.05);
    EXPECT_NEAR(rep.encoding_area_frac, 0.04, 0.025);
}

TEST(Synthesis, Bf16MmuIsSmallerButHungrier)
{
    // The bfloat16 datapath has far fewer ALUs (Table 1) but each is
    // larger; at the preset design points the bf16 MMU burns comparable
    // power for a fraction of the throughput.
    auto h = synthesize(core::presetConfig(core::Preset::Us500,
                                           arith::Encoding::Hbfp8));
    auto b = synthesize(core::presetConfig(core::Preset::Us500,
                                           arith::Encoding::Bfloat16));
    double h_tput = core::presetDesign(core::Preset::Us500,
                                       arith::Encoding::Hbfp8)
                        .throughput_ops;
    double b_tput = core::presetDesign(core::Preset::Us500,
                                       arith::Encoding::Bfloat16)
                        .throughput_ops;
    double h_eff = h_tput / h.component("MMU").power_w;
    double b_eff = b_tput / b.component("MMU").power_w;
    EXPECT_GT(h_eff / b_eff, 3.0);
}

TEST(SynthesisDeath, UnknownComponentIsFatal)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    auto rep = synthesize(cfg);
    EXPECT_DEATH(rep.component("Flux Capacitor"),
                 "no component estimate");
}

} // namespace
} // namespace synth
} // namespace equinox

// Appended: run-energy model tests.

#include "core/experiment.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace synth
{
namespace
{

TEST(EnergyModel, ComponentsSumAndPowerWithinEnvelope)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    core::ExperimentOptions opts;
    opts.warmup_requests = 150;
    opts.measure_requests = 1200;
    auto r = core::runAtLoad(cfg, 0.9, opts);
    auto e = estimateEnergy(cfg, r.sim);
    EXPECT_NEAR(e.total_j,
                e.alu_j + e.sram_j + e.simd_j + e.dram_j + e.static_j,
                e.total_j * 1e-9);
    EXPECT_GT(e.avg_power_w, 30.0);
    // Average power cannot exceed the design's peak power model by much
    // (the DSE sized the arrays against 75 W).
    EXPECT_LT(e.avg_power_w, 90.0);
    EXPECT_GT(e.pj_per_op, 0.0);
}

TEST(EnergyModel, IdleLoadBurnsLessDynamicEnergy)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    core::ExperimentOptions opts;
    opts.warmup_requests = 150;
    opts.measure_requests = 1200;
    auto low = core::runAtLoad(cfg, 0.1, opts);
    auto high = core::runAtLoad(cfg, 0.9, opts);
    auto el = estimateEnergy(cfg, low.sim);
    auto eh = estimateEnergy(cfg, high.sim);
    EXPECT_LT(el.avg_power_w, eh.avg_power_w);
    // But energy per op is WORSE at low load: fixed power amortises
    // over less work.
    EXPECT_GT(el.pj_per_op, eh.pj_per_op);
}

TEST(EnergyModel, MinLatencyDesignIsDataMovementBound)
{
    // The section-2 argument: the n=1 design spends most dynamic energy
    // moving data; the batched designs do not.
    core::ExperimentOptions opts;
    opts.warmup_requests = 150;
    opts.measure_requests = 1200;
    auto min_cfg = core::presetConfig(core::Preset::Min);
    auto big_cfg = core::presetConfig(core::Preset::Us500);
    auto rm = core::runAtLoad(min_cfg, 0.9, opts);
    auto rb = core::runAtLoad(big_cfg, 0.9, opts);
    auto em = estimateEnergy(min_cfg, rm.sim);
    auto eb = estimateEnergy(big_cfg, rb.sim);
    EXPECT_GT(em.data_movement_frac, 0.75);
    EXPECT_LT(eb.data_movement_frac, 0.6);
    EXPECT_GT(em.pj_per_op, 3.0 * eb.pj_per_op);
}

TEST(EnergyModel, EmptyRunIsZero)
{
    auto cfg = core::presetConfig(core::Preset::Us500);
    sim::SimResult empty;
    auto e = estimateEnergy(cfg, empty);
    EXPECT_DOUBLE_EQ(e.total_j, 0.0);
}

} // namespace
} // namespace synth
} // namespace equinox

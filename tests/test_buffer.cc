/**
 * @file
 * Unit tests for the banked SRAM buffers and their space sharing.
 */

#include <gtest/gtest.h>

#include "sim/buffer.hh"

namespace equinox
{
namespace sim
{
namespace
{

TEST(SramBuffer, AllocateAndRelease)
{
    SramBuffer buf("test", 1000, 4, 1, 1);
    EXPECT_EQ(buf.capacity(), 1000u);
    EXPECT_TRUE(buf.allocate(0, 600));
    EXPECT_EQ(buf.available(), 400u);
    EXPECT_TRUE(buf.allocate(1, 400));
    EXPECT_EQ(buf.available(), 0u);
    EXPECT_FALSE(buf.allocate(2, 1));
    buf.release(0);
    EXPECT_EQ(buf.available(), 600u);
    EXPECT_TRUE(buf.allocate(2, 500));
    EXPECT_EQ(buf.allocationOf(2), 500u);
    EXPECT_EQ(buf.allocationOf(0), 0u);
}

TEST(SramBuffer, ReleaseIsIdempotent)
{
    SramBuffer buf("test", 100, 1, 1, 1);
    EXPECT_TRUE(buf.allocate(7, 50));
    buf.release(7);
    buf.release(7);
    EXPECT_EQ(buf.available(), 100u);
}

TEST(SramBuffer, RejectsOversizedAllocation)
{
    SramBuffer buf("test", 100, 1, 1, 1);
    EXPECT_FALSE(buf.allocate(0, 101));
    EXPECT_TRUE(buf.allocate(0, 100));
}

TEST(SramBuffer, ContentionWithinPortsIsFree)
{
    SramBuffer buf("test", 100, 4, 2, 1);
    EXPECT_EQ(buf.contentionCycles(2, 1, 1000), 0u);
    EXPECT_EQ(buf.contentionCycles(1, 0, 1000), 0u);
}

TEST(SramBuffer, ContentionStretchesOverlap)
{
    SramBuffer buf("test", 100, 4, 1, 1);
    // Two read streams on one read port: overlap doubles.
    EXPECT_EQ(buf.contentionCycles(2, 0, 1000), 1000u);
    // Three writers on one write port: +2x.
    EXPECT_EQ(buf.contentionCycles(1, 3, 600), 1200u);
}

TEST(SramBufferDeath, DoubleAllocatePanics)
{
    SramBuffer buf("test", 100, 1, 1, 1);
    EXPECT_TRUE(buf.allocate(0, 10));
    EXPECT_DEATH(buf.allocate(0, 10), "already holds space");
}

} // namespace
} // namespace sim
} // namespace equinox

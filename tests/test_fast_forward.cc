/**
 * @file
 * The fastpath suite: proves the steady-state fast-forward engine is
 * observationally equivalent to the cycle-accurate event loop.
 *
 * Three layers:
 *
 *  - EventQueue unit tests of the inline-dispatch predicate itself:
 *    events inline only when they are unambiguously next (open tick
 *    drained, heap empty or strictly later, within the run limit), the
 *    recursion depth cap falls back to a real schedule, and inlined
 *    dispatches count exactly like heap-popped ones.
 *
 *  - A seeded differential fuzz: N randomized accelerator configs
 *    (scheduling x batching policy, load level, arrival process,
 *    training on/off, active FaultPlans) each run twice on fresh
 *    accelerators -- fast_forward on vs off -- and must agree on the
 *    full result digest (every SimResult field incl. percentiles and
 *    the fault trace), the dispatch count, and every registered
 *    statistic (the MetricsSnapshot surface).
 *
 *  - A cluster differential: a multi-replica run under an active
 *    ChaosPlan with the control plane engaged, fast-forwarded vs
 *    cycle-accurate, bit-identical cluster digests.
 *
 * A divergence here means an inline site is not actually in tail
 * position, or the canInline() predicate admitted an event that was
 * not unambiguously next. Fix the engine; never weaken the digests.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "cluster_digest.hh"
#include "common/random.hh"
#include "core/experiment.hh"
#include "fault/chaos_plan.hh"
#include "sim_digest.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace
{

using sim::EventQueue;

// ---------------------------------------------------------------------
// EventQueue inline-dispatch unit tests
// ---------------------------------------------------------------------

TEST(FastForwardQueue, InlinesOnlyUnambiguouslyNextEvents)
{
    EventQueue q;
    q.setFastForward(true, 1000);

    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(10); });

    // From outside any dispatch: when=5 precedes the heap head (10),
    // strictly, so it inlines; when=15 does not.
    q.scheduleFast(5, [&] { order.push_back(5); });
    EXPECT_EQ(q.inlined(), 1u);
    EXPECT_EQ(q.now(), 5u);

    q.scheduleFast(15, [&] { order.push_back(15); });
    EXPECT_EQ(q.inlined(), 1u); // heap head at 10 <= 15: not inlined

    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{5, 10, 15}));
    EXPECT_EQ(q.dispatched(), 3u);
}

TEST(FastForwardQueue, ExactTieWithHeapHeadIsNotInlined)
{
    EventQueue q;
    q.setFastForward(true, 1000);
    std::vector<int> order;
    q.schedule(7, [&] { order.push_back(0); });
    // Same tick as the heap head: the earlier insertion seq must win,
    // so inline dispatch (which would run first) is forbidden.
    q.scheduleFast(7, [&] { order.push_back(1); });
    EXPECT_EQ(q.inlined(), 0u);
    while (q.runOne()) {
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(FastForwardQueue, OpenTickBacklogPreventsInline)
{
    EventQueue q;
    q.setFastForward(true, 1000);
    std::vector<int> order;
    q.schedule(5, [&] {
        // A same-tick sibling is still pending in the open-tick FIFO:
        // inlining t=6 here would run it before the sibling.
        q.scheduleFast(6, [&] { order.push_back(6); });
        order.push_back(50);
    });
    q.schedule(5, [&] { order.push_back(51); });
    while (q.runOne()) {
    }
    EXPECT_EQ(q.inlined(), 0u);
    EXPECT_EQ(order, (std::vector<int>{50, 51, 6}));
}

TEST(FastForwardQueue, RunLimitCapsInlineDispatch)
{
    EventQueue q;
    q.setFastForward(true, 100);
    bool ran = false;
    q.schedule(50, [&] {
        // Past the run limit: must go to the heap so the run loop can
        // apply its own stop condition.
        q.scheduleFast(150, [&] { ran = true; });
    });
    EXPECT_TRUE(q.runOne());
    EXPECT_EQ(q.inlined(), 0u);
    EXPECT_FALSE(ran);
    EXPECT_FALSE(q.empty());
}

TEST(FastForwardQueue, DepthCapFallsBackToHeap)
{
    EventQueue q;
    q.setFastForward(true, 1u << 20);
    int fired = 0;
    Tick last = 0;
    std::function<void()> chain = [&] {
        EXPECT_GE(q.now(), last);
        last = q.now();
        if (++fired < 300)
            q.scheduleFastIn(1, chain);
    };
    q.schedule(1, chain);
    while (q.runOne()) {
    }
    EXPECT_EQ(fired, 300);
    EXPECT_EQ(q.dispatched(), 300u);
    // Deep chains unwind through the heap every kMaxInlineDepth
    // frames, so some -- not all -- dispatches are inlined.
    EXPECT_GT(q.inlined(), 0u);
    EXPECT_LT(q.inlined(), 300u);
}

TEST(FastForwardQueue, DisabledQueueNeverInlines)
{
    EventQueue q;
    int fired = 0;
    q.scheduleFast(5, [&] { ++fired; });
    EXPECT_EQ(q.inlined(), 0u);
    EXPECT_EQ(fired, 0);
    while (q.runOne()) {
    }
    EXPECT_EQ(fired, 1);
}

// ---------------------------------------------------------------------
// Seeded differential fuzz: fast-forward vs cycle-accurate
// ---------------------------------------------------------------------

struct FuzzCase
{
    sim::SchedPolicy sched;
    sim::BatchPolicy batch;
    sim::ArrivalProcess arrivals;
    double load_frac;
    bool training;
    bool faults;
    std::uint64_t seed;
};

FuzzCase
caseFromSeed(std::uint64_t i)
{
    Rng rng(0xfa57f02d ^ (i * 0x9e3779b97f4a7c15ull));
    static const sim::SchedPolicy scheds[] = {
        sim::SchedPolicy::InferenceOnly, sim::SchedPolicy::Priority,
        sim::SchedPolicy::FairShare, sim::SchedPolicy::SoftwareBatch};
    FuzzCase c;
    c.sched = scheds[rng.uniformInt(0, 3)];
    c.batch = rng.uniformInt(0, 1) ? sim::BatchPolicy::Adaptive
                                   : sim::BatchPolicy::Static;
    c.arrivals = rng.uniformInt(0, 1) ? sim::ArrivalProcess::Poisson
                                      : sim::ArrivalProcess::Bursty;
    c.load_frac = 0.15 + 0.1 * static_cast<double>(rng.uniformInt(0, 8));
    c.training = rng.uniformInt(0, 1) != 0;
    c.faults = rng.uniformInt(0, 2) == 0; // ~1/3 of cases fault-laden
    c.seed = 1 + i * 37;
    return c;
}

struct CaseOutcome
{
    std::uint64_t digest;
    std::uint64_t events;
    std::uint64_t inlined;
    std::map<std::string, double> stats;
};

CaseOutcome
runCase(const FuzzCase &c, bool fast_forward)
{
    auto cfg = testutil::smallConfig("fastpath-fuzz");
    cfg.sched_policy = c.sched;
    cfg.batch_policy = c.batch;
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(testutil::tinyRnn()));
    if (c.training)
        accel.installTraining(
            compiler.compileTraining(testutil::tinyRnn(), 16));

    sim::RunSpec spec;
    spec.warmup_requests = 25;
    spec.measure_requests = 300;
    spec.seed = c.seed;
    spec.arrival_process = c.arrivals;
    spec.arrival_rate_per_s = c.load_frac * accel.maxRequestRate();
    spec.fast_forward = fast_forward;
    if (c.faults) {
        spec.faults = testutil::densePlan();
        spec.faults.seed = c.seed * 13 + 7;
    }
    auto res = accel.run(spec);

    CaseOutcome out;
    out.digest = sim::resultDigest(res);
    out.events = res.events_dispatched;
    out.inlined = res.events_inlined;
    stats::StatRegistry reg;
    accel.registerStats(reg);
    reg.forEach([&](const std::string &name, double v,
                    const std::string &) { out.stats[name] = v; });
    return out;
}

TEST(FastForwardDifferential, RandomizedConfigsAreBitIdentical)
{
    const std::uint64_t kCases = 14;
    std::uint64_t cases_with_inlining = 0;
    for (std::uint64_t i = 0; i < kCases; ++i) {
        FuzzCase c = caseFromSeed(i);
        SCOPED_TRACE("case " + std::to_string(i) + ": sched=" +
                     sim::schedPolicyName(c.sched) + " batch=" +
                     sim::batchPolicyName(c.batch) + " load=" +
                     std::to_string(c.load_frac) +
                     (c.training ? " +train" : "") +
                     (c.faults ? " +faults" : ""));
        CaseOutcome ca = runCase(c, false);
        CaseOutcome ff = runCase(c, true);
        EXPECT_EQ(ca.inlined, 0u);
        EXPECT_EQ(ff.digest, ca.digest);
        EXPECT_EQ(ff.events, ca.events);
        EXPECT_EQ(ff.stats, ca.stats);
        if (ff.inlined > 0)
            ++cases_with_inlining;
    }
    // The differential is vacuous if fast-forward never engages.
    EXPECT_GT(cases_with_inlining, kCases / 2);
}

TEST(FastForwardDifferential, GoldenScenarioInlinesAndMatches)
{
    // The golden-digest scenario itself, explicitly: FF off must equal
    // FF on must equal the recorded constant (the golden suite runs
    // with the build's default, so this nails both paths to it).
    auto ff = testutil::runScenario(sim::SchedPolicy::Priority, {});
    EXPECT_EQ(testutil::digestOf(ff), testutil::kGoldenFaultFreePriority);
    EXPECT_GT(ff.events_inlined, 0u);
}

TEST(FastForwardDifferential, EnvEscapeHatchKeepsResultsIdentical)
{
    // EQX_FASTFORWARD=0 is read once per process, so simulate the
    // veto through the spec flag: a cycle-accurate run of the golden
    // scenario still produces the golden digest.
    auto cfg = testutil::smallConfig();
    cfg.sched_policy = sim::SchedPolicy::Priority;
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(testutil::tinyRnn()));
    accel.installTraining(
        compiler.compileTraining(testutil::tinyRnn(), 16));
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.seed = 17;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.fast_forward = false;
    auto res = accel.run(spec);
    EXPECT_EQ(res.events_inlined, 0u);
    EXPECT_EQ(testutil::digestOf(res),
              testutil::kGoldenFaultFreePriority);
}

// ---------------------------------------------------------------------
// Cluster differential under an active ChaosPlan
// ---------------------------------------------------------------------

cluster::ClusterPointResult
runChaosPoint(bool fast_forward, std::size_t jobs)
{
    constexpr double kHorizonS = 0.02;
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 1u << 30;
    opts.min_measure_s = kHorizonS;
    opts.seed = 17;
    opts.max_sim_s = kHorizonS;
    opts.jobs = jobs;
    opts.fast_forward = fast_forward;

    cluster::ClusterSpec cspec;
    cspec.replicas = 3;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.chaos = fault::chaosScenario("replica_churn", kHorizonS);

    cluster::Cluster fleet(testutil::smallConfig(), cspec);
    return fleet.run(0.7, opts, core::compileWorkload(
                                    testutil::smallConfig(), opts));
}

TEST(FastForwardCluster, ChaosDifferentialIsBitIdentical)
{
    auto ca = runChaosPoint(false, 1);
    auto ff = runChaosPoint(true, 1);
    EXPECT_EQ(testutil::digestOf(ff), testutil::digestOf(ca));
}

TEST(FastForwardCluster, FanOutPreservesFastForwardIdentity)
{
    auto serial = runChaosPoint(true, 1);
    auto fanout = runChaosPoint(true, 3);
    EXPECT_EQ(testutil::digestOf(serial), testutil::digestOf(fanout));
}

} // namespace
} // namespace equinox

/**
 * @file
 * Simulator tests: exact latency accounting on synthetic programs, plus
 * behavioural invariants (batching, scheduling policies, training
 * co-location) on small compiled workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace sim
{
namespace
{

/** A small test design: n=8, m=2, w=2 at 100 MHz. */
AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "test";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

/** A tiny RNN model that compiles quickly on smallConfig(). */
workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/** Hand-built one-service program with exact, known timing. */
InferenceServiceDesc
syntheticService(std::uint32_t batch_rows, std::size_t steps,
                 Tick occupancy, Tick simd, Tick drain, double freq)
{
    InferenceServiceDesc desc;
    desc.model_name = "synthetic";
    desc.program.name = "synthetic";
    desc.program.batch_rows = batch_rows;
    for (std::size_t s = 0; s < steps; ++s) {
        isa::StepBlock sb;
        sb.mmu.instructions = 1;
        sb.mmu.occupancy = occupancy;
        sb.mmu.rows_used = batch_rows;
        sb.mmu.rows_slots = batch_rows;
        sb.mmu.geom_frac = 1.0;
        sb.mmu.real_ops = occupancy * 1000;
        sb.simd_cycles = simd;
        sb.drain_cycles = drain;
        desc.program.steps.push_back(sb);
    }
    desc.service_time_s = units::cyclesToSeconds(
        desc.program.serviceCycles(), freq);
    return desc;
}

TEST(Accelerator, SingleRequestLatencyIsTimeoutPlusService)
{
    auto cfg = smallConfig();
    cfg.batch_timeout_mult = 2.0;
    Accelerator accel(cfg);
    auto svc = syntheticService(4, 3, 100, 10, 5, cfg.frequency_hz);
    Tick service = svc.program.serviceCycles();
    EXPECT_EQ(service, 3u * (100 + 10 + 5));
    Tick timeout = 2 * service;
    accel.installInference(std::move(svc));

    RunSpec spec;
    spec.arrival_rate_per_s = 50.0; // sparse: every batch has 1 request
    spec.warmup_requests = 0;
    spec.measure_requests = 20;
    spec.seed = 3;
    auto res = accel.run(spec);

    // Every request waits for the adaptive timeout, then runs alone.
    double expect_s = units::cyclesToSeconds(timeout + service,
                                             cfg.frequency_hz);
    EXPECT_NEAR(res.mean_latency_s, expect_s, expect_s * 0.01);
    EXPECT_NEAR(res.p99_latency_s, expect_s, expect_s * 0.01);
    EXPECT_EQ(res.batches_formed, res.batches_incomplete);
    EXPECT_NEAR(res.avg_batch_fill, 0.25, 1e-9);
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    RunSpec spec;
    spec.warmup_requests = 20;
    spec.measure_requests = 300;
    spec.seed = 11;

    SimResult first;
    for (int i = 0; i < 2; ++i) {
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
        auto res = accel.run(spec);
        if (i == 0) {
            first = res;
        } else {
            EXPECT_DOUBLE_EQ(res.p99_latency_s, first.p99_latency_s);
            EXPECT_DOUBLE_EQ(res.inference_throughput_ops,
                             first.inference_throughput_ops);
            EXPECT_EQ(res.completed_requests, first.completed_requests);
        }
    }
}

TEST(Accelerator, RunIsRepeatableOnOneInstance)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    RunSpec spec;
    spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();
    spec.warmup_requests = 10;
    spec.measure_requests = 200;
    auto a = accel.run(spec);
    auto b = accel.run(spec);
    EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_DOUBLE_EQ(a.inference_throughput_ops,
                     b.inference_throughput_ops);
}

TEST(Accelerator, ThroughputTracksOfferedLoadWhenSubcritical)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    for (double load : {0.2, 0.5, 0.8}) {
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        RunSpec spec;
        spec.arrival_rate_per_s = load * accel.maxRequestRate();
        spec.warmup_requests = 100;
        spec.measure_requests = 2000;
        auto res = accel.run(spec);
        double offered_ops = load * accel.maxInferenceOpRate();
        EXPECT_NEAR(res.inference_throughput_ops / offered_ops, 1.0, 0.1)
            << "load " << load;
    }
}

TEST(Accelerator, SaturationThroughputMatchesAnalyticMax)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    RunSpec spec;
    spec.arrival_rate_per_s = 1.5 * accel.maxRequestRate();
    spec.warmup_requests = 200;
    spec.measure_requests = 3000;
    auto res = accel.run(spec);
    EXPECT_NEAR(res.inference_throughput_ops / accel.maxInferenceOpRate(),
                1.0, 0.05);
}

TEST(Accelerator, BreakdownCoversAllMeasuredCycles)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    RunSpec spec;
    spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();
    spec.warmup_requests = 50;
    spec.measure_requests = 500;
    auto res = accel.run(spec);
    double total_cycles = res.sim_seconds * cfg.frequency_hz;
    EXPECT_NEAR(res.mmu_breakdown.total() / total_cycles, 1.0, 0.02);
}

TEST(Accelerator, DummyFractionFallsWithLoad)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    auto run_at = [&](double load) {
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        RunSpec spec;
        spec.arrival_rate_per_s = load * accel.maxRequestRate();
        spec.warmup_requests = 50;
        spec.measure_requests = 1000;
        return accel.run(spec);
    };
    auto low = run_at(0.05);
    auto high = run_at(0.9);
    EXPECT_GT(low.mmu_breakdown.fraction(stats::CycleClass::Dummy),
              high.mmu_breakdown.fraction(stats::CycleClass::Dummy));
    EXPECT_GT(low.mmu_breakdown.fraction(stats::CycleClass::Idle),
              high.mmu_breakdown.fraction(stats::CycleClass::Idle));
    EXPECT_LT(low.avg_batch_fill, 0.5);
    EXPECT_GT(high.avg_batch_fill, 0.9);
}

TEST(Accelerator, StaticBatchingWorseAtLowLoad)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    auto p99_with = [&](BatchPolicy policy) {
        auto c = cfg;
        c.batch_policy = policy;
        Accelerator accel(c);
        workload::Compiler comp(c);
        accel.installInference(comp.compileInference(tinyRnn()));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.15 * accel.maxRequestRate();
        spec.warmup_requests = 50;
        spec.measure_requests = 800;
        return accel.run(spec).p99_latency_s;
    };
    EXPECT_GT(p99_with(BatchPolicy::Static),
              2.0 * p99_with(BatchPolicy::Adaptive));
}

TEST(Accelerator, LargerTimeoutRaisesTailLatencyAtLowLoad)
{
    auto cfg = smallConfig();
    double prev = 0.0;
    for (double mult : {2.0, 6.0, 10.0}) {
        auto c = cfg;
        c.batch_timeout_mult = mult;
        workload::Compiler compiler(c);
        Accelerator accel(c);
        accel.installInference(compiler.compileInference(tinyRnn()));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.05 * accel.maxRequestRate();
        spec.warmup_requests = 20;
        spec.measure_requests = 500;
        auto res = accel.run(spec);
        EXPECT_GE(res.p99_latency_s, prev);
        prev = res.p99_latency_s;
    }
}

TEST(Accelerator, TrainingOnlyRunIsDramPaced)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));

    RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 30;
    auto res = accel.run(spec);
    EXPECT_EQ(res.training_iterations, 30u);
    EXPECT_GT(res.training_throughput_ops, 0.0);
    // Throughput cannot exceed what the iteration's DRAM traffic allows.
    auto train = compiler.compileTraining(tinyRnn(), 16);
    double bytes = 0.0;
    for (const auto &s : train.iteration.steps)
        bytes += static_cast<double>(s.mmu.stream_bytes + s.store_bytes);
    double dram_bound = static_cast<double>(train.iteration.totalRealOps())
                        / bytes * cfg.dram.bandwidth_bytes_per_s;
    EXPECT_LE(res.training_throughput_ops, dram_bound * 1.01);
}

TEST(Accelerator, PriorityKeepsInferenceThroughput)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    auto run_case = [&](bool with_training, SchedPolicy policy) {
        auto c = cfg;
        c.sched_policy = policy;
        workload::Compiler comp(c);
        Accelerator accel(c);
        accel.installInference(comp.compileInference(tinyRnn()));
        if (with_training)
            accel.installTraining(comp.compileTraining(tinyRnn(), 16));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.85 * accel.maxRequestRate();
        spec.warmup_requests = 100;
        spec.measure_requests = 1500;
        return accel.run(spec);
    };
    auto baseline = run_case(false, SchedPolicy::InferenceOnly);
    auto priority = run_case(true, SchedPolicy::Priority);
    EXPECT_NEAR(priority.inference_throughput_ops /
                    baseline.inference_throughput_ops,
                1.0, 0.08);
    EXPECT_GT(priority.training_throughput_ops, 0.0);
}

TEST(Accelerator, FairShareSacrificesInferenceAtHighLoad)
{
    auto cfg = smallConfig();
    auto run_policy = [&](SchedPolicy policy) {
        auto c = cfg;
        c.sched_policy = policy;
        workload::Compiler comp(c);
        Accelerator accel(c);
        accel.installInference(comp.compileInference(tinyRnn()));
        accel.installTraining(comp.compileTraining(tinyRnn(), 16));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.9 * accel.maxRequestRate();
        spec.warmup_requests = 100;
        spec.measure_requests = 1200;
        spec.max_sim_s = 5.0;
        return accel.run(spec);
    };
    auto fair = run_policy(SchedPolicy::FairShare);
    auto prio = run_policy(SchedPolicy::Priority);
    EXPECT_LT(fair.inference_throughput_ops,
              0.9 * prio.inference_throughput_ops);
    EXPECT_GT(fair.p99_latency_s, prio.p99_latency_s);
}

TEST(Accelerator, TrainingThroughputFallsWithLoad)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    double prev = 1e30;
    for (double load : {0.1, 0.5, 0.9}) {
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
        RunSpec spec;
        spec.arrival_rate_per_s = load * accel.maxRequestRate();
        spec.warmup_requests = 100;
        spec.measure_requests = 1500;
        auto res = accel.run(spec);
        EXPECT_LT(res.training_throughput_ops, prev * 1.05)
            << "load " << load;
        prev = res.training_throughput_ops;
    }
}

TEST(Accelerator, SoftwareSchedulerStarvesTraining)
{
    auto cfg = smallConfig();
    cfg.sched_policy = SchedPolicy::SoftwareBatch;
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    RunSpec spec;
    spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();
    spec.warmup_requests = 100;
    spec.measure_requests = 1000;
    auto res = accel.run(spec);
    // At meaningful load the software control plane cannot find idle
    // windows long enough for an unpreemptible training batch.
    Accelerator hw(smallConfig());
    workload::Compiler hwc(smallConfig());
    hw.installInference(hwc.compileInference(tinyRnn()));
    hw.installTraining(hwc.compileTraining(tinyRnn(), 16));
    auto hw_res = hw.run(spec);
    EXPECT_LT(res.training_throughput_ops,
              0.25 * hw_res.training_throughput_ops);
}

TEST(BatchTimeout, RearmsAgainstNewFrontAfterQueueDrains)
{
    // Regression: the adaptive timeout armed for request A must not fire
    // a premature partial batch for a request that arrived after A's
    // batch already formed. Here A+B form a full batch (clearing the
    // queue) while A's timer is still pending; C arrives one cycle
    // before that timer fires, so the handler must re-arm against C's
    // arrival rather than cutting C's wait short.
    auto cfg = smallConfig();
    cfg.batch_timeout_mult = 2.0;
    Accelerator accel(cfg);
    auto svc = syntheticService(2, 3, 100, 10, 5, cfg.frequency_hz);
    Tick service = svc.program.serviceCycles(); // 345 cycles
    Tick timeout = 2 * service;                 // 690 cycles
    accel.installInference(std::move(svc));

    double cyc = 1.0 / cfg.frequency_hz;
    RunSpec spec;
    spec.arrival_trace_s = {0.0, 100 * cyc,
                            static_cast<double>(timeout - 1) * cyc};
    spec.warmup_requests = 0;
    spec.measure_requests = 3;
    auto res = accel.run(spec);

    EXPECT_EQ(res.completed_requests, 3u);
    EXPECT_EQ(res.batches_formed, 2u);
    EXPECT_EQ(res.batches_incomplete, 1u);
    // C waits its own full adaptive timeout, then runs alone.
    double expect_max = units::cyclesToSeconds(timeout + service,
                                               cfg.frequency_hz);
    EXPECT_NEAR(res.max_latency_s, expect_max, expect_max * 0.001);
}

TEST(BatchTimeout, FiringIntoAnEmptyQueueIsHarmless)
{
    // Regression: a timer armed for a request whose batch later filled
    // and dispatched fires into an empty pending queue; it must form
    // nothing and leave the timeout machinery re-armable.
    auto cfg = smallConfig();
    cfg.batch_timeout_mult = 2.0;
    Accelerator accel(cfg);
    auto svc = syntheticService(2, 3, 100, 10, 5, cfg.frequency_hz);
    Tick service = svc.program.serviceCycles();
    Tick timeout = 2 * service;
    accel.installInference(std::move(svc));

    double cyc = 1.0 / cfg.frequency_hz;
    RunSpec spec;
    // A+B fill a batch before A's timer fires; D arrives long after the
    // stale timer expired and must still get a freshly armed timeout.
    spec.arrival_trace_s = {0.0, 100 * cyc,
                            static_cast<double>(3 * timeout) * cyc};
    spec.warmup_requests = 0;
    spec.measure_requests = 3;
    auto res = accel.run(spec);

    EXPECT_EQ(res.completed_requests, 3u);
    EXPECT_EQ(res.batches_formed, 2u);
    EXPECT_EQ(res.batches_incomplete, 1u);
    double expect_max = units::cyclesToSeconds(timeout + service,
                                               cfg.frequency_hz);
    EXPECT_NEAR(res.max_latency_s, expect_max, expect_max * 0.001);
}

TEST(AcceleratorDeath, OversizedServiceFailsInstallation)
{
    auto cfg = smallConfig();
    cfg.weight_buffer_bytes = 1024; // far too small
    Accelerator accel(cfg);
    workload::Compiler compiler(smallConfig());
    auto svc = compiler.compileInference(tinyRnn());
    EXPECT_DEATH(
        {
            Accelerator a(cfg);
            a.installInference(std::move(svc));
        },
        "exceed the weight buffer");
}

} // namespace
} // namespace sim
} // namespace equinox

/**
 * @file
 * Unit tests for the training substrate: layers, losses, datasets, and a
 * short end-to-end training sanity run in each encoding.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arith/gemm.hh"
#include "nn/datasets.hh"
#include "nn/layers.hh"
#include "nn/loss.hh"
#include "nn/mlp.hh"
#include "nn/trainer.hh"

namespace equinox
{
namespace nn
{
namespace
{

TEST(Activations, ReluAndTanh)
{
    Matrix m(1, 4);
    m.at(0, 0) = -2.0f;
    m.at(0, 1) = 0.0f;
    m.at(0, 2) = 3.0f;
    m.at(0, 3) = -0.5f;
    Matrix relu = m;
    applyActivation(Activation::Relu, relu);
    EXPECT_EQ(relu.at(0, 0), 0.0f);
    EXPECT_EQ(relu.at(0, 2), 3.0f);

    Matrix th = m;
    applyActivation(Activation::Tanh, th);
    EXPECT_NEAR(th.at(0, 2), std::tanh(3.0f), 1e-6);
}

TEST(SoftmaxLoss, UniformLogits)
{
    Matrix logits(2, 4, 0.0f);
    auto res = softmaxCrossEntropy(logits, {0, 3});
    EXPECT_NEAR(res.mean_loss, std::log(4.0), 1e-9);
    // Gradient rows sum to zero.
    for (std::size_t r = 0; r < 2; ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < 4; ++c)
            s += res.logit_grad.at(r, c);
        EXPECT_NEAR(s, 0.0, 1e-7);
    }
}

TEST(SoftmaxLoss, ConfidentCorrectPredictionHasLowLoss)
{
    Matrix logits(1, 3, 0.0f);
    logits.at(0, 1) = 20.0f;
    auto res = softmaxCrossEntropy(logits, {1});
    EXPECT_LT(res.mean_loss, 1e-6);
    EXPECT_EQ(res.error_rate, 0.0);
}

TEST(SoftmaxLoss, ErrorRateCountsArgmaxMismatch)
{
    Matrix logits(2, 2, 0.0f);
    logits.at(0, 0) = 5.0f; // predicts 0, label 1 -> error
    logits.at(1, 1) = 5.0f; // predicts 1, label 1 -> correct
    auto res = softmaxCrossEntropy(logits, {1, 1});
    EXPECT_DOUBLE_EQ(res.error_rate, 0.5);
}

TEST(SoftmaxLoss, GradientMatchesFiniteDifference)
{
    Matrix logits(1, 3);
    logits.at(0, 0) = 0.3f;
    logits.at(0, 1) = -0.8f;
    logits.at(0, 2) = 1.1f;
    std::vector<std::uint32_t> labels{2};
    auto base = softmaxCrossEntropy(logits, labels);
    const double eps = 1e-3;
    for (std::size_t c = 0; c < 3; ++c) {
        Matrix bumped = logits;
        bumped.at(0, c) += static_cast<float>(eps);
        auto res = softmaxCrossEntropy(bumped, labels);
        double fd = (res.mean_loss - base.mean_loss) / eps;
        EXPECT_NEAR(fd, base.logit_grad.at(0, c), 1e-3) << c;
    }
}

TEST(Perplexity, ExpOfLoss)
{
    EXPECT_NEAR(perplexityFromLoss(std::log(32.0)), 32.0, 1e-9);
}

TEST(Mse, LossAndGradient)
{
    Matrix p(1, 2), t(1, 2);
    p.at(0, 0) = 1.0f;
    p.at(0, 1) = 3.0f;
    t.at(0, 0) = 0.0f;
    t.at(0, 1) = 3.0f;
    auto res = meanSquaredError(p, t);
    EXPECT_DOUBLE_EQ(res.mean_loss, 0.5);
    EXPECT_FLOAT_EQ(res.grad.at(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(res.grad.at(0, 1), 0.0f);
}

TEST(DenseLayer, ForwardShapeAndBias)
{
    Rng rng(1);
    DenseLayer layer(3, 2, Activation::None, rng);
    arith::Fp32Gemm eng;
    Matrix x(4, 3, 0.0f);
    Matrix y = layer.forward(x, eng);
    EXPECT_EQ(y.rows(), 4u);
    EXPECT_EQ(y.cols(), 2u);
    // Zero input with zero bias -> zero output.
    EXPECT_EQ(y.maxAbs(), 0.0f);
}

TEST(DenseLayer, GradientMatchesFiniteDifference)
{
    // Check dL/dx through a dense+tanh layer against finite differences
    // of a scalar loss L = sum(y).
    Rng rng(9);
    DenseLayer layer(4, 3, Activation::Tanh, rng);
    arith::Fp32Gemm eng;
    Matrix x(2, 4);
    x.randomize(rng, 0.5);

    auto loss_of = [&](const Matrix &input) {
        DenseLayer copy = layer;
        Matrix y = copy.forward(input, eng);
        double s = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i)
            s += y.data()[i];
        return s;
    };

    Matrix y = layer.forward(x, eng);
    Matrix ones(y.rows(), y.cols(), 1.0f);
    Matrix dx = layer.backward(ones, eng);

    const double eps = 1e-3;
    for (std::size_t r = 0; r < x.rows(); ++r) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            Matrix bumped = x;
            bumped.at(r, c) += static_cast<float>(eps);
            double fd = (loss_of(bumped) - loss_of(x)) / eps;
            EXPECT_NEAR(fd, dx.at(r, c), 5e-2) << r << "," << c;
        }
    }
}

TEST(SgdConfig, StepDecaySchedule)
{
    SgdConfig cfg;
    cfg.learning_rate = 1.0;
    cfg.decay_factor = 0.1;
    cfg.decay_epochs = {10, 20};
    EXPECT_DOUBLE_EQ(cfg.rateForEpoch(0), 1.0);
    EXPECT_DOUBLE_EQ(cfg.rateForEpoch(9), 1.0);
    EXPECT_DOUBLE_EQ(cfg.rateForEpoch(10), 0.1);
    EXPECT_NEAR(cfg.rateForEpoch(25), 0.01, 1e-12);
}

TEST(ClusterDataset, ShapesAndDeterminism)
{
    ClusterDataset a(4, 8, 256, 64, 0.4, 7);
    ClusterDataset b(4, 8, 256, 64, 0.4, 7);
    EXPECT_EQ(a.featureDim(), 8u);
    EXPECT_EQ(a.classCount(), 4u);
    EXPECT_EQ(a.trainSize(), 256u);
    EXPECT_EQ(a.validation().labels.size(), 64u);
    EXPECT_EQ(arith::maxAbsDiff(a.validation().inputs,
                                b.validation().inputs),
              0.0);
    // Labels span the class range.
    for (auto l : a.validation().labels)
        EXPECT_LT(l, 4u);
}

TEST(ClusterDataset, BatchesPartitionEpoch)
{
    ClusterDataset d(3, 6, 100, 10, 0.3, 11);
    std::size_t seen = 0;
    for (std::size_t b = 0; b < 4; ++b) {
        Batch batch = d.trainBatch(0, b, 32);
        seen += batch.labels.size();
        EXPECT_EQ(batch.inputs.rows(), batch.labels.size());
    }
    EXPECT_EQ(seen, 100u);
}

TEST(MarkovTextDataset, OneHotRows)
{
    MarkovTextDataset d(8, 3, 128, 32, 1.5, 13);
    EXPECT_EQ(d.featureDim(), 24u);
    const Batch &v = d.validation();
    for (std::size_t r = 0; r < v.inputs.rows(); ++r) {
        // Each of the 3 context groups has exactly one hot unit.
        for (std::size_t g = 0; g < 3; ++g) {
            float sum = 0.0f;
            for (std::size_t c = 0; c < 8; ++c)
                sum += v.inputs.at(r, g * 8 + c);
            EXPECT_EQ(sum, 1.0f);
        }
    }
}

TEST(MarkovTextDataset, EntropyFloorPositiveAndBelowUniform)
{
    MarkovTextDataset d(16, 2, 64, 16, 2.0, 17);
    EXPECT_GT(d.sourceEntropy(), 0.0);
    EXPECT_LT(d.sourceEntropy(), std::log(16.0));
}

/** End-to-end: a few epochs of training must reduce validation loss in
 *  every encoding, and hbfp8 must track fp32 closely. */
TEST(Trainer, LearnsInAllEncodings)
{
    ClusterDataset data(4, 10, 512, 256, 0.5, 21);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.batch_size = 32;
    cfg.hidden_dims = {32};
    cfg.sgd.learning_rate = 0.05;

    double first_losses[3], last_losses[3];
    int idx = 0;
    for (auto enc :
         {arith::Encoding::Fp32, arith::Encoding::Bfloat16,
          arith::Encoding::Hbfp8}) {
        auto engine = arith::makeGemmEngine(enc);
        auto history = trainClassifier(data, *engine, cfg);
        ASSERT_EQ(history.size(), cfg.epochs);
        first_losses[idx] = history.front().valid_loss;
        last_losses[idx] = history.back().valid_loss;
        EXPECT_LT(history.back().valid_loss, history.front().valid_loss)
            << encodingName(enc);
        EXPECT_LT(history.back().valid_error, 0.5) << encodingName(enc);
        ++idx;
    }
    // hbfp8 final loss within a modest factor of fp32's (Figure 2 claim).
    EXPECT_LT(last_losses[2], last_losses[0] * 1.5 + 0.1);
    (void)first_losses;
}

TEST(Trainer, DeterministicAcrossRuns)
{
    ClusterDataset data(3, 8, 128, 64, 0.5, 23);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch_size = 32;
    cfg.hidden_dims = {16};
    arith::Fp32Gemm eng;
    auto h1 = trainClassifier(data, eng, cfg);
    auto h2 = trainClassifier(data, eng, cfg);
    for (std::size_t e = 0; e < h1.size(); ++e) {
        EXPECT_DOUBLE_EQ(h1[e].valid_loss, h2[e].valid_loss);
        EXPECT_DOUBLE_EQ(h1[e].train_loss, h2[e].train_loss);
    }
}

} // namespace
} // namespace nn
} // namespace equinox

/**
 * @file
 * Tests for the MLP workload kind and its lowering (inference and
 * training), plus trace-playback arrivals.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace workload
{
namespace
{

sim::AcceleratorConfig
equinox500Like()
{
    sim::AcceleratorConfig cfg;
    cfg.n = 143;
    cfg.m = 4;
    cfg.w = 4;
    cfg.frequency_hz = units::MHz(610);
    return cfg;
}

TEST(MlpModel, ParametersAndOps)
{
    auto mlp = DnnModel::mlp4096();
    EXPECT_EQ(mlp.kind, DnnModel::Kind::Mlp);
    std::uint64_t expect = 1024ull * 4096 + 4096ull * 4096 +
                           4096ull * 4096 + 4096ull * 1024;
    EXPECT_EQ(mlp.paramCount(), expect);
    EXPECT_DOUBLE_EQ(mlp.opsPerRequest(),
                     2.0 * static_cast<double>(expect));
}

TEST(MlpCompiler, InferenceOneStepPerLayer)
{
    Compiler compiler(equinox500Like());
    auto svc = compiler.compileInference(DnnModel::mlp4096());
    EXPECT_EQ(svc.program.steps.size(), 4u);
    EXPECT_EQ(svc.program.batch_rows, 143u);
    // All MACs accounted for.
    double ops = static_cast<double>(svc.program.totalRealOps());
    EXPECT_DOUBLE_EQ(ops, 143.0 * DnnModel::mlp4096().opsPerRequest());
    EXPECT_GT(svc.service_time_s, 0.0);
    EXPECT_LT(svc.service_time_s, 1e-3);
}

TEST(MlpCompiler, TrainingPassStructure)
{
    Compiler compiler(equinox500Like());
    auto train = compiler.compileTraining(DnnModel::mlp4096(), 128);
    // fwd 4 + dgrad 3 (input layer's dX skipped) + wgrad 4.
    EXPECT_EQ(train.iteration.steps.size(), 4u + 3 + 4);
    for (const auto &s : train.iteration.steps)
        EXPECT_GT(s.mmu.stream_bytes, 0u);
    // Ops: fwd B*params + dgrad B*(params - first layer) + wgrad
    // B*params.
    auto mlp = DnnModel::mlp4096();
    double first_layer = 1024.0 * 4096;
    double expect = 2.0 * 128 *
                    (2.0 * static_cast<double>(mlp.paramCount()) +
                     (static_cast<double>(mlp.paramCount()) -
                      first_layer));
    EXPECT_NEAR(static_cast<double>(train.iteration.totalRealOps()),
                expect, expect * 1e-9);
}

TEST(MlpWorkload, RunsEndToEndWithTraining)
{
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(
        DnnModel::mlp4096()));
    accel.installTraining(compiler.compileTraining(DnnModel::mlp4096(),
                                                   128));
    sim::RunSpec spec;
    spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();
    spec.warmup_requests = 100;
    spec.measure_requests = 1000;
    auto res = accel.run(spec);
    EXPECT_GT(res.inference_throughput_ops, 0.0);
    EXPECT_GT(res.training_throughput_ops, 0.0);
    EXPECT_LT(res.p99_latency_s, 5e-3);
}

TEST(TracePlayback, ArrivalsFollowTheTrace)
{
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(
        DnnModel::mlp4096()));

    // 2 full batches' worth of requests at exact instants.
    sim::RunSpec spec;
    std::size_t n = 143;
    for (std::size_t i = 0; i < 2 * n; ++i)
        spec.arrival_trace_s.push_back(1e-6 * static_cast<double>(i));
    spec.warmup_requests = 0;
    spec.measure_requests = 2 * n;
    spec.max_sim_s = 1.0;
    auto res = accel.run(spec);
    EXPECT_EQ(res.completed_requests, 2 * n);
    EXPECT_GT(res.p99_latency_s, 0.0);
}

TEST(TracePlayback, DeterministicReplay)
{
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    sim::RunSpec spec;
    for (std::size_t i = 0; i < 300; ++i)
        spec.arrival_trace_s.push_back(3e-6 * static_cast<double>(i));
    spec.warmup_requests = 0;
    spec.measure_requests = 280;
    spec.max_sim_s = 1.0;

    double p99[2];
    for (int run = 0; run < 2; ++run) {
        sim::Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(
            DnnModel::mlp4096()));
        p99[run] = accel.run(spec).p99_latency_s;
    }
    EXPECT_DOUBLE_EQ(p99[0], p99[1]);
}

TEST(TracePlaybackDeath, NonAscendingTraceIsFatal)
{
    auto cfg = equinox500Like();
    Compiler compiler(cfg);
    sim::RunSpec spec;
    spec.arrival_trace_s = {1e-3, 0.5e-3};
    spec.measure_requests = 2;
    EXPECT_DEATH(
        {
            sim::Accelerator accel(cfg);
            accel.installInference(compiler.compileInference(
                DnnModel::mlp4096()));
            accel.run(spec);
        },
        "ascending");
}

} // namespace
} // namespace workload
} // namespace equinox

/**
 * @file
 * Byte-identity of parallel vs serial sweeps: the tentpole guarantee of
 * the parallel sweep engine is that `opts.jobs = N` produces results
 * bit-for-bit identical to `opts.jobs = 1`. Each load point is a
 * self-contained simulation (its own Accelerator and seeded Rng
 * streams), so fan-out must not move a single event, RNG draw or
 * floating-point accumulation.
 *
 * The digest folds every field of every LoadPointResult -- including
 * the full SimResult and fault trace -- the same way
 * test_refactor_identity pins the monolith-vs-blocks refactor.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/units.hh"
#include "core/experiment.hh"
#include "model/dse.hh"

namespace equinox
{
namespace core
{
namespace
{

/** FNV-1a over the exact bit patterns of the accumulated fields. */
class Digest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 14695981039346656037ull;
};

void
foldSim(Digest &dg, const sim::SimResult &r)
{
    dg.d(r.sim_seconds);
    dg.u64(r.completed_requests);
    dg.d(r.offered_rate_per_s);
    dg.d(r.inference_throughput_ops);
    dg.d(r.training_throughput_ops);
    dg.d(r.mean_latency_s);
    dg.d(r.p50_latency_s);
    dg.d(r.p99_latency_s);
    dg.d(r.max_latency_s);
    dg.d(r.mean_service_s);
    for (unsigned c = 0;
         c < static_cast<unsigned>(stats::CycleClass::NumClasses); ++c)
        dg.d(r.mmu_breakdown.get(static_cast<stats::CycleClass>(c)));
    dg.u64(r.batches_formed);
    dg.u64(r.batches_incomplete);
    dg.d(r.avg_batch_fill);
    dg.d(r.dram_utilization);
    dg.u64(r.dram_train_bytes);
    dg.u64(r.host_bytes);
    dg.u64(r.training_iterations);
    dg.d(r.mmu_busy_cycles);
    dg.d(r.simd_busy_cycles);
    for (const auto &s : r.per_service) {
        dg.u64(s.ctx);
        dg.u64(s.completed);
        dg.d(s.mean_latency_s);
        dg.d(s.p99_latency_s);
    }
    dg.u64(r.faults.dram_corrected);
    dg.u64(r.faults.dram_uncorrectable);
    dg.u64(r.faults.host_drops);
    dg.u64(r.faults.host_corruptions);
    dg.u64(r.faults.mmu_hangs);
    dg.u64(r.faults.host_retries);
    dg.u64(r.faults.host_give_ups);
    dg.u64(r.faults.watchdog_resets);
    dg.u64(r.faults.checkpoints_written);
    dg.u64(r.faults.rollbacks);
    dg.u64(r.faults.lost_training_iterations);
    dg.u64(r.faults.shed_requests);
    dg.u64(r.faults.storms_entered);
    dg.u64(r.faults.downtime_cycles);
    dg.u64(r.faults.recovery_cycles.count());
    dg.d(r.faults.recovery_cycles.mean());
    dg.d(r.faults.recovery_cycles.max());
    dg.d(r.availability);
    dg.u64(r.committed_training_iterations);
    for (const auto &f : r.fault_trace) {
        dg.u64(f.tick);
        dg.u64(static_cast<std::uint64_t>(f.kind));
        dg.u64(f.bytes);
    }
}

/** Fold a whole sweep, every field of every point, in input order. */
std::uint64_t
digestOf(const std::vector<LoadPointResult> &results)
{
    Digest dg;
    dg.u64(results.size());
    for (const auto &r : results) {
        dg.d(r.load);
        foldSim(dg, r.sim);
        dg.d(r.inference_tops);
        dg.d(r.training_tops);
        dg.d(r.p99_ms);
        dg.d(r.mean_ms);
        dg.d(r.max_inference_tops);
        dg.d(r.service_time_ms);
    }
    return dg.value();
}

/** The small test design the simulator tests share: n=8 m=2 w=2. */
sim::AcceleratorConfig
smallConfig()
{
    sim::AcceleratorConfig cfg;
    cfg.name = "parallel-identity";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

ExperimentOptions
sweepOptions()
{
    ExperimentOptions opts;
    opts.model = tinyRnn();
    opts.train_model = tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    return opts;
}

const std::vector<double> kLoads = {0.1, 0.25, 0.4, 0.55, 0.7, 0.85};

TEST(ParallelIdentity, FaultFreeSweepMatchesSerial)
{
    auto opts = sweepOptions();
    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 4;
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, ActiveFaultPlanSweepMatchesSerial)
{
    // The dense plan from RefactorIdentity.ActiveFaultPlan: ECC
    // corrections, host drops/retries, hangs, watchdog resets and
    // rollbacks all fire inside the short run, so the digest covers
    // the fault machinery's RNG streams too.
    auto opts = sweepOptions();
    opts.fault_plan.seed = 23;
    opts.fault_plan.dram_bit_error_rate = 1e-7;
    opts.fault_plan.host_drop_prob = 0.05;
    opts.fault_plan.mmu_hang_rate_per_s = 200.0;

    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 4;
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);

    std::uint64_t total_faults = 0;
    for (const auto &r : serial)
        total_faults += r.sim.faults.totalFaults();
    EXPECT_GT(total_faults, 0u);
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, JobsZeroUsesDefaultAndMatchesSerial)
{
    auto opts = sweepOptions();
    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 0; // defaultJobs()
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, RepeatedParallelSweepsAreStable)
{
    // Two parallel runs of the same sweep must agree with each other
    // (no dependence on scheduling noise across runs).
    auto opts = sweepOptions();
    opts.jobs = 4;
    auto a = runLoadSweep(smallConfig(), kLoads, opts);
    auto b = runLoadSweep(smallConfig(), kLoads, opts);
    EXPECT_EQ(digestOf(a), digestOf(b));
}

TEST(ParallelIdentity, DseGridMatchesSerial)
{
    model::TechParams tech;
    model::DseConfig grid;
    grid.n_values = {1, 4, 16, 64, 143, 256};
    grid.frequencies = {units::MHz(532), units::MHz(610),
                        units::MHz(1000)};
    grid.jobs = 1;
    auto serial =
        model::exploreDesignSpace(tech, arith::Encoding::Hbfp8, grid);
    grid.jobs = 4;
    auto parallel =
        model::exploreDesignSpace(tech, arith::Encoding::Hbfp8, grid);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const auto &s = serial.points[i];
        const auto &p = parallel.points[i];
        EXPECT_EQ(s.n, p.n);
        EXPECT_EQ(s.m, p.m);
        EXPECT_EQ(s.w, p.w);
        EXPECT_EQ(std::memcmp(&s.frequency_hz, &p.frequency_hz,
                              sizeof s.frequency_hz), 0);
        EXPECT_EQ(std::memcmp(&s.throughput_ops, &p.throughput_ops,
                              sizeof s.throughput_ops), 0);
    }
}

} // namespace
} // namespace core
} // namespace equinox

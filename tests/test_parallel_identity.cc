/**
 * @file
 * Byte-identity of parallel vs serial sweeps: the tentpole guarantee of
 * the parallel sweep engine is that `opts.jobs = N` produces results
 * bit-for-bit identical to `opts.jobs = 1`. Each load point is a
 * self-contained simulation (its own Accelerator and seeded Rng
 * streams), so fan-out must not move a single event, RNG draw or
 * floating-point accumulation.
 *
 * The digest (tests/sim_digest.hh) folds every field of every
 * LoadPointResult -- including the full SimResult and fault trace --
 * the same way test_refactor_identity pins the monolith-vs-blocks
 * refactor.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "model/dse.hh"
#include "sim_digest.hh"

namespace equinox
{
namespace core
{
namespace
{

using testutil::digestOf;
using testutil::tinyRnn;

sim::AcceleratorConfig
smallConfig()
{
    return testutil::smallConfig("parallel-identity");
}

ExperimentOptions
sweepOptions()
{
    ExperimentOptions opts;
    opts.model = tinyRnn();
    opts.train_model = tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    return opts;
}

const std::vector<double> kLoads = {0.1, 0.25, 0.4, 0.55, 0.7, 0.85};

TEST(ParallelIdentity, FaultFreeSweepMatchesSerial)
{
    auto opts = sweepOptions();
    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 4;
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, ActiveFaultPlanSweepMatchesSerial)
{
    // The dense plan from RefactorIdentity.ActiveFaultPlan: ECC
    // corrections, host drops/retries, hangs, watchdog resets and
    // rollbacks all fire inside the short run, so the digest covers
    // the fault machinery's RNG streams too.
    auto opts = sweepOptions();
    opts.fault_plan = testutil::densePlan();

    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 4;
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);

    std::uint64_t total_faults = 0;
    for (const auto &r : serial)
        total_faults += r.sim.faults.totalFaults();
    EXPECT_GT(total_faults, 0u);
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, JobsZeroUsesDefaultAndMatchesSerial)
{
    auto opts = sweepOptions();
    opts.jobs = 1;
    auto serial = runLoadSweep(smallConfig(), kLoads, opts);
    opts.jobs = 0; // defaultJobs()
    auto parallel = runLoadSweep(smallConfig(), kLoads, opts);
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
}

TEST(ParallelIdentity, RepeatedParallelSweepsAreStable)
{
    // Two parallel runs of the same sweep must agree with each other
    // (no dependence on scheduling noise across runs).
    auto opts = sweepOptions();
    opts.jobs = 4;
    auto a = runLoadSweep(smallConfig(), kLoads, opts);
    auto b = runLoadSweep(smallConfig(), kLoads, opts);
    EXPECT_EQ(digestOf(a), digestOf(b));
}

TEST(ParallelIdentity, DseGridMatchesSerial)
{
    model::TechParams tech;
    model::DseConfig grid;
    grid.n_values = {1, 4, 16, 64, 143, 256};
    grid.frequencies = {units::MHz(532), units::MHz(610),
                        units::MHz(1000)};
    grid.jobs = 1;
    auto serial =
        model::exploreDesignSpace(tech, arith::Encoding::Hbfp8, grid);
    grid.jobs = 4;
    auto parallel =
        model::exploreDesignSpace(tech, arith::Encoding::Hbfp8, grid);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const auto &s = serial.points[i];
        const auto &p = parallel.points[i];
        EXPECT_EQ(s.n, p.n);
        EXPECT_EQ(s.m, p.m);
        EXPECT_EQ(s.w, p.w);
        EXPECT_EQ(std::memcmp(&s.frequency_hz, &p.frequency_hz,
                              sizeof s.frequency_hz), 0);
        EXPECT_EQ(std::memcmp(&s.throughput_ops, &p.throughput_ops,
                              sizeof s.throughput_ops), 0);
    }
}

} // namespace
} // namespace core
} // namespace equinox

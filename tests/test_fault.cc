/**
 * @file
 * Fault-injection and recovery tests: SECDED ECC outcomes, retry/backoff
 * timing, hang scheduling, watchdog reset cost, checkpoint/rollback
 * bounds, plan and configuration validation, determinism of the whole
 * fault pipeline, and the zero-rate pay-for-what-you-use guarantee.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/units.hh"
#include "fault/chaos_plan.hh"
#include "fault/fault_plan.hh"
#include "fault/injector.hh"
#include "fault/traffic_mix.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace
{

constexpr double kFreq = 100e6; // 100 MHz test clock

sim::AcceleratorConfig
smallConfig()
{
    sim::AcceleratorConfig cfg;
    cfg.name = "test";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = kFreq;
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/** One-service synthetic program with exact, known timing. */
sim::InferenceServiceDesc
syntheticService(std::uint32_t batch_rows, std::size_t steps,
                 Tick occupancy, Tick simd, Tick drain)
{
    sim::InferenceServiceDesc desc;
    desc.model_name = "synthetic";
    desc.program.name = "synthetic";
    desc.program.batch_rows = batch_rows;
    for (std::size_t s = 0; s < steps; ++s) {
        isa::StepBlock sb;
        sb.mmu.instructions = 1;
        sb.mmu.occupancy = occupancy;
        sb.mmu.rows_used = batch_rows;
        sb.mmu.rows_slots = batch_rows;
        sb.mmu.geom_frac = 1.0;
        sb.mmu.real_ops = occupancy * 1000;
        sb.simd_cycles = simd;
        sb.drain_cycles = drain;
        desc.program.steps.push_back(sb);
    }
    desc.service_time_s = units::cyclesToSeconds(
        desc.program.serviceCycles(), kFreq);
    return desc;
}

// ---------------------------------------------------------------------
// SECDED ECC model
// ---------------------------------------------------------------------

TEST(EccModel, NoFlipsNoOutcome)
{
    fault::EccModel ecc{fault::EccConfig{}};
    Rng rng(1);
    auto out = ecc.apply(0, 4096, rng);
    EXPECT_EQ(out.corrected, 0u);
    EXPECT_EQ(out.uncorrectable, 0u);
    EXPECT_EQ(out.extra_cycles, 0u);
}

TEST(EccModel, SingleFlipIsCorrectedAtFixedCost)
{
    fault::EccConfig cfg;
    cfg.correction_cycles = 32;
    fault::EccModel ecc{cfg};
    Rng rng(1);
    auto out = ecc.apply(1, 1 << 20, rng);
    EXPECT_EQ(out.corrected, 1u);
    EXPECT_EQ(out.uncorrectable, 0u);
    EXPECT_EQ(out.extra_cycles, 32u);
}

TEST(EccModel, DoubleFlipInOneCodewordIsUncorrectable)
{
    // An 8-byte access holds exactly one 64-bit codeword, so two flips
    // must collide and defeat the single-error correction.
    fault::EccModel ecc{fault::EccConfig{}};
    Rng rng(7);
    auto out = ecc.apply(2, 8, rng);
    EXPECT_EQ(out.corrected, 0u);
    EXPECT_EQ(out.uncorrectable, 1u);
    EXPECT_EQ(out.extra_cycles, 0u);
}

TEST(EccModel, ManyFlipsConserveCount)
{
    fault::EccModel ecc{fault::EccConfig{}};
    Rng rng(11);
    for (unsigned flips : {3u, 17u, 64u}) {
        auto out = ecc.apply(flips, 4096, rng);
        // Every flip lands in some codeword: corrected words hold one
        // flip, uncorrectable words at least two.
        EXPECT_LE(out.corrected + 2 * out.uncorrectable, flips);
        EXPECT_GE(out.corrected + flips * out.uncorrectable, flips);
    }
}

// ---------------------------------------------------------------------
// Retry backoff timing
// ---------------------------------------------------------------------

TEST(FaultInjector, BackoffGrowsGeometricallyWithoutJitter)
{
    fault::FaultPlan plan;
    plan.retry.base_backoff_s = 2e-6; // 200 cycles at 100 MHz
    plan.retry.backoff_multiplier = 2.0;
    plan.retry.jitter_frac = 0.0;
    stats::FaultStats fs;
    fault::FaultInjector inj(plan, kFreq, &fs);
    EXPECT_EQ(inj.backoffCycles(0), 200u);
    EXPECT_EQ(inj.backoffCycles(1), 400u);
    EXPECT_EQ(inj.backoffCycles(2), 800u);
    EXPECT_EQ(inj.backoffCycles(5), 6400u);
}

TEST(FaultInjector, JitterStaysInsideItsFraction)
{
    fault::FaultPlan plan;
    plan.retry.base_backoff_s = 2e-6;
    plan.retry.backoff_multiplier = 2.0;
    plan.retry.jitter_frac = 0.25;
    stats::FaultStats fs;
    fault::FaultInjector inj(plan, kFreq, &fs);
    for (int i = 0; i < 64; ++i) {
        Tick wait = inj.backoffCycles(1);
        EXPECT_GE(wait, 400u);
        EXPECT_LE(wait, 500u);
    }
}

// ---------------------------------------------------------------------
// Injection hooks
// ---------------------------------------------------------------------

TEST(FaultInjector, ScheduledFaultsFireOnFirstMatchingTransfer)
{
    fault::FaultPlan plan;
    plan.scheduled.push_back({1e-5, fault::FaultKind::DramUncorrectable});
    plan.scheduled.push_back({1e-5, fault::FaultKind::HostLinkDrop});
    stats::FaultStats fs;
    fault::FaultInjector inj(plan, kFreq, &fs);
    Tick at = units::secondsToCycles(1e-5, kFreq);

    // Before the scheduled time nothing fires.
    auto early = inj.dramHook()->onTransfer(at - 1, 64,
                                            dram::Priority::Low);
    EXPECT_FALSE(early.uncorrectable);
    // The first transfer at/after it consumes the fault...
    auto hit = inj.dramHook()->onTransfer(at, 64, dram::Priority::Low);
    EXPECT_TRUE(hit.uncorrectable);
    EXPECT_EQ(fs.dram_uncorrectable, 1u);
    // ...and it never fires twice.
    auto later = inj.dramHook()->onTransfer(at + 10, 64,
                                            dram::Priority::Low);
    EXPECT_FALSE(later.uncorrectable);

    auto drop = inj.hostHook()->onTransfer(at, 64, dram::Priority::High);
    EXPECT_TRUE(drop.failed);
    EXPECT_EQ(fs.host_drops, 1u);

    ASSERT_EQ(inj.trace().size(), 2u);
    EXPECT_EQ(inj.trace()[0].kind, fault::FaultKind::DramUncorrectable);
    EXPECT_EQ(inj.trace()[1].kind, fault::FaultKind::HostLinkDrop);
}

TEST(FaultInjector, HangScheduleMergesScheduledAndPoisson)
{
    fault::FaultPlan plan;
    plan.scheduled.push_back({1e-3, fault::FaultKind::MmuHang});
    stats::FaultStats fs;
    {
        fault::FaultInjector inj(plan, kFreq, &fs);
        auto hangs = inj.hangSchedule(units::secondsToCycles(2e-3, kFreq));
        ASSERT_EQ(hangs.size(), 1u);
        EXPECT_EQ(hangs[0], units::secondsToCycles(1e-3, kFreq));
    }
    plan.mmu_hang_rate_per_s = 5000.0;
    fault::FaultInjector a(plan, kFreq, &fs);
    fault::FaultInjector b(plan, kFreq, &fs);
    Tick horizon = units::secondsToCycles(10e-3, kFreq);
    auto ha = a.hangSchedule(horizon);
    auto hb = b.hangSchedule(horizon);
    EXPECT_EQ(ha, hb); // same seed, same schedule
    EXPECT_GT(ha.size(), 1u);
    EXPECT_TRUE(std::is_sorted(ha.begin(), ha.end()));
    EXPECT_LE(ha.back(), horizon);
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

TEST(FaultPlan, DefaultPlanIsValidAndDisabled)
{
    fault::FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    EXPECT_TRUE(plan.validate().empty());
}

TEST(FaultPlan, ValidateCatchesBadKnobs)
{
    fault::FaultPlan plan;
    plan.host_drop_prob = 0.7;
    plan.host_corrupt_prob = 0.5; // sum >= 1: retries can never succeed
    plan.retry.backoff_multiplier = 0.5;
    plan.dram_bit_error_rate = -1.0;
    auto errors = plan.validate();
    EXPECT_GE(errors.size(), 3u);
}

TEST(FaultPlan, KindNamesAreStable)
{
    using fault::FaultKind;
    EXPECT_STREQ(fault::faultKindName(FaultKind::DramBitError),
                 "dram-bit-error");
    EXPECT_STREQ(fault::faultKindName(FaultKind::DramUncorrectable),
                 "dram-uncorrectable");
    EXPECT_STREQ(fault::faultKindName(FaultKind::HostLinkDrop),
                 "host-link-drop");
    EXPECT_STREQ(fault::faultKindName(FaultKind::HostLinkCorrupt),
                 "host-link-corrupt");
    EXPECT_STREQ(fault::faultKindName(FaultKind::MmuHang), "mmu-hang");
}

TEST(FaultPlan, ValidateCatchesEveryRecoveryKnob)
{
    fault::FaultPlan plan;
    plan.host_corrupt_prob = -0.25;
    plan.mmu_hang_rate_per_s = -2.0;
    plan.scheduled.push_back({-1.0, fault::FaultKind::MmuHang});
    plan.ecc.word_bits = 0;
    plan.retry.base_backoff_s = -1e-6;
    plan.watchdog.timeout_s = 0.0;
    plan.degrade.storm_faults = 0;
    plan.degrade.storm_window_s = 0.0;
    auto errors = plan.validate();
    EXPECT_EQ(errors.size(), 8u);
    auto mentions = [&errors](const char *needle) {
        for (const auto &e : errors) {
            if (e.find(needle) != std::string::npos)
                return true;
        }
        return false;
    };
    EXPECT_TRUE(mentions("host_corrupt_prob"));
    EXPECT_TRUE(mentions("mmu_hang_rate_per_s"));
    EXPECT_TRUE(mentions("mmu-hang")); // scheduled fault names its kind
    EXPECT_TRUE(mentions("ecc.word_bits"));
    EXPECT_TRUE(mentions("backoff"));
    EXPECT_TRUE(mentions("watchdog"));
    EXPECT_TRUE(mentions("storm_faults"));
    EXPECT_TRUE(mentions("storm_window_s"));
}

TEST(ChaosPlan, ValidateCatchesZeroCrowdDuration)
{
    fault::ChaosPlan plan;
    plan.crowd.rate_per_s = 0.1;
    plan.crowd.duration_s = 0.0;
    auto errors = plan.validate();
    ASSERT_EQ(errors.size(), 1u);
    EXPECT_NE(errors[0].find("crowd.duration_s"), std::string::npos);
}

TEST(ChaosPlan, ScheduledOutagesKeepSpecificReplicas)
{
    fault::ChaosPlan plan;
    plan.scheduled_outages.push_back({2, 1.0, 2.0});
    plan.scheduled_outages.push_back({2, 1.0, 3.0});
    plan.scheduled_outages.push_back({fault::kEveryReplica, 3.0, 4.0});
    plan.scheduled_surges.push_back({1.0, 3.0, 2.0});
    plan.scheduled_surges.push_back({1.0, 2.0, 2.0});
    EXPECT_TRUE(plan.validate().empty());
    auto mat = fault::materializeChaos(plan, 3, 10.0);
    // The sentinel expands to one window per replica; specific-replica
    // windows pass through untouched and sort by (from, replica, to).
    ASSERT_EQ(mat.outages.size(), 5u);
    EXPECT_EQ(mat.outages[0].replica, 2u);
    EXPECT_EQ(mat.outages[0].to_s, 2.0);
    EXPECT_EQ(mat.outages[1].replica, 2u);
    EXPECT_EQ(mat.outages[1].to_s, 3.0);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(mat.outages[2 + r].replica, r);
    ASSERT_EQ(mat.surges.size(), 2u);
    EXPECT_EQ(mat.surges[0].to_s, 2.0); // same-from ties sort by to
}

TEST(ChaosPlan, RackOutagesDarkenWholeRacks)
{
    fault::ChaosPlan plan;
    plan.seed = 7;
    plan.rack.rack_size = 4;
    plan.rack.rate_per_s = 0.5;
    plan.rack.outage_s = 1.0;
    const std::size_t replicas = 10;
    const double horizon = 40.0;
    auto mat = fault::materializeChaos(plan, replicas, horizon);
    ASSERT_FALSE(mat.outages.empty());
    // Every rack event darkens one full rack over one shared window,
    // with the tail rack truncated to the replicas that exist.
    std::map<std::pair<double, double>, std::vector<std::size_t>> groups;
    for (const auto &o : mat.outages) {
        EXPECT_LT(o.replica, replicas);
        EXPECT_LT(o.from_s, o.to_s);
        EXPECT_LE(o.to_s, horizon);
        groups[{o.from_s, o.to_s}].push_back(o.replica);
    }
    for (const auto &[window, members] : groups) {
        std::size_t lo = members.front() - members.front() % 4;
        std::size_t hi = std::min(lo + 4, replicas);
        EXPECT_EQ(members.size(), hi - lo)
            << "window [" << window.first << ", " << window.second << ")";
        for (std::size_t i = 0; i < members.size(); ++i)
            EXPECT_EQ(members[i], lo + i);
    }
}

TEST(ChaosPlan, NamedScenariosValidateAndMaterialize)
{
    for (const auto &name : fault::chaosScenarioNames()) {
        auto plan = fault::chaosScenario(name, 100.0, 11);
        EXPECT_TRUE(plan.enabled()) << name;
        EXPECT_TRUE(plan.validate().empty()) << name;
        fault::materializeChaos(plan, 8, 100.0);
    }
    auto crowd = fault::chaosScenario("flash_crowd", 100.0, 11);
    EXPECT_EQ(crowd.scheduled_surges.size(), 2u);
    EXPECT_TRUE(crowd.scheduled_outages.empty());
    auto mixed = fault::chaosScenario("flash_crowd_outage", 100.0, 11);
    EXPECT_EQ(mixed.scheduled_surges.size(), 2u);
    EXPECT_EQ(mixed.scheduled_outages.size(), 1u);
    EXPECT_GT(mixed.storm.rate_per_s, 0.0);
}

TEST(ChaosPlanDeath, UnknownScenarioFailsFast)
{
    EXPECT_EXIT({ fault::chaosScenario("nope", 10.0, 1); },
                testing::ExitedWithCode(1), "unknown chaos scenario");
}

TEST(TrafficMix, ValidateNamesEveryBadKnob)
{
    fault::TrafficMix mix;
    mix.flash_crowds.push_back({-1.0, -2.0, 0.5}); // unordered, weak
    mix.diurnal.period_s = 100.0;
    mix.diurnal.peak_factor = 0.5;
    mix.diurnal.segments_per_period = 1;
    mix.diurnal.phase = 1.5;
    EXPECT_EQ(mix.validate().size(), 5u);

    fault::TrafficMix negative_period;
    negative_period.diurnal.period_s = -1.0;
    EXPECT_EQ(negative_period.validate().size(), 1u);
}

TEST(TrafficMix, MaterializeDropsFlatSpans)
{
    fault::TrafficMix mix;
    mix.flash_crowds.push_back({2.0, 4.0, 3.0});
    auto windows = fault::materializeTraffic(mix, 10.0);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_DOUBLE_EQ(windows[0].from_s, 2.0);
    EXPECT_DOUBLE_EQ(windows[0].to_s, 4.0);
    EXPECT_DOUBLE_EQ(windows[0].factor, 3.0);
}

TEST(TrafficMix, NamedScenariosShapeTheBlend)
{
    auto crowd = fault::trafficScenario("flash_crowd", 100.0);
    EXPECT_EQ(crowd.flash_crowds.size(), 2u);
    EXPECT_GT(crowd.factorAt(25.0), 2.0); // inside the 3x spike
    auto mt = fault::trafficScenario("multi_tenant", 100.0);
    ASSERT_EQ(mt.tenants.size(), 3u);
    // The spiky tenant's private 5x surge moves the blend by its share
    // only, so the composed factor stays strictly inside (1, 5).
    double inside = mt.factorAt(0.20 * 100.0);
    EXPECT_GT(inside, 1.0);
    EXPECT_LT(inside, 5.0);
}

TEST(TrafficMixDeath, MaterializeRejectsInvalidMix)
{
    fault::TrafficMix mix;
    mix.flash_crowds.push_back({2.0, 4.0, 0.5});
    EXPECT_EXIT({ fault::materializeTraffic(mix, 10.0); },
                testing::ExitedWithCode(1), "invalid traffic mix");
}

TEST(TrafficMixDeath, UnknownScenarioFailsFast)
{
    EXPECT_EXIT({ fault::trafficScenario("nope", 10.0); },
                testing::ExitedWithCode(1), "unknown traffic scenario");
}

TEST(AcceleratorConfig, DefaultConfigValidates)
{
    EXPECT_TRUE(sim::AcceleratorConfig{}.validate().empty());
    EXPECT_TRUE(smallConfig().validate().empty());
}

TEST(AcceleratorConfig, ValidateNamesTheOffendingField)
{
    auto cfg = smallConfig();
    cfg.n = 0;
    cfg.frequency_hz = 0.0;
    cfg.train_staging_frac = 1.5;
    auto errors = cfg.validate();
    EXPECT_GE(errors.size(), 3u);
    auto report = sim::formatConfigErrors(errors);
    EXPECT_NE(report.find("frequency_hz"), std::string::npos);
    EXPECT_NE(report.find("train_staging_frac"), std::string::npos);
}

TEST(AcceleratorConfigDeath, ConstructionFailsFastOnBadConfig)
{
    auto cfg = smallConfig();
    cfg.frequency_hz = -1.0;
    EXPECT_EXIT({ sim::Accelerator accel(cfg); },
                testing::ExitedWithCode(1),
                "invalid accelerator configuration");
}

// ---------------------------------------------------------------------
// End-to-end recovery behaviour
// ---------------------------------------------------------------------

TEST(FaultRecovery, WatchdogResetHasExactCost)
{
    auto cfg = smallConfig();
    sim::Accelerator accel(cfg);
    accel.installInference(syntheticService(4, 3, 100, 10, 5));

    sim::RunSpec spec;
    spec.arrival_rate_per_s = 2000.0;
    spec.warmup_requests = 0;
    spec.measure_requests = 400;
    spec.seed = 3;
    spec.faults.scheduled.push_back({0.01, fault::FaultKind::MmuHang});
    spec.faults.watchdog.timeout_s = 500e-6;
    spec.faults.watchdog.reset_cost_s = 50e-6;
    auto res = accel.run(spec);

    EXPECT_EQ(res.faults.mmu_hangs, 1u);
    EXPECT_EQ(res.faults.watchdog_resets, 1u);
    // The synthetic service has no weight footprint, so the outage is
    // exactly detection timeout + fixed reset cost.
    Tick expect = units::secondsToCycles(550e-6, cfg.frequency_hz);
    EXPECT_EQ(res.faults.downtime_cycles, expect);
    EXPECT_LT(res.availability, 1.0);
    EXPECT_GT(res.availability, 0.0);
    EXPECT_GE(res.faults.recovery_cycles.count(), 1u);
    EXPECT_EQ(res.completed_requests, 400u);
}

TEST(FaultRecovery, UndetectedHangClearsAfterItsDuration)
{
    auto cfg = smallConfig();
    sim::Accelerator accel(cfg);
    accel.installInference(syntheticService(4, 3, 100, 10, 5));

    sim::RunSpec spec;
    spec.arrival_rate_per_s = 2000.0;
    spec.warmup_requests = 0;
    spec.measure_requests = 400;
    spec.seed = 3;
    spec.faults.scheduled.push_back({0.01, fault::FaultKind::MmuHang});
    spec.faults.watchdog.enabled = false;
    spec.faults.watchdog.hang_duration_s = 2e-3;
    auto res = accel.run(spec);

    EXPECT_EQ(res.faults.mmu_hangs, 1u);
    EXPECT_EQ(res.faults.watchdog_resets, 0u);
    Tick expect = units::secondsToCycles(2e-3, cfg.frequency_hz);
    EXPECT_EQ(res.faults.downtime_cycles, expect);
    EXPECT_EQ(res.completed_requests, 400u);
}

TEST(FaultRecovery, RetryRecoversEveryLossWithoutLivelock)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));

    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.seed = 5;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.faults.host_drop_prob = 0.2;
    spec.faults.host_corrupt_prob = 0.1;
    auto res = accel.run(spec);

    const auto &fs = res.faults;
    EXPECT_GT(fs.host_drops + fs.host_corruptions, 0u);
    // Every detected loss is either retried or (rarely) given up on.
    EXPECT_EQ(fs.host_drops + fs.host_corruptions,
              fs.host_retries + fs.host_give_ups);
    EXPECT_GE(res.completed_requests, 400u); // made progress: no livelock
}

TEST(FaultRecovery, CheckpointBoundsIterationsLostToRollback)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));

    sim::RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 30;
    spec.faults.checkpoint.interval_iterations = 5;
    for (double at : {2e-5, 6e-5, 1e-4})
        spec.faults.scheduled.push_back(
            {at, fault::FaultKind::DramUncorrectable});
    auto res = accel.run(spec);

    const auto &fs = res.faults;
    EXPECT_EQ(fs.dram_uncorrectable, 3u);
    EXPECT_GE(fs.rollbacks, 1u);
    EXPECT_GT(fs.checkpoints_written, 0u);
    // A checkpoint every 5 iterations means no rollback can replay more
    // than 5 (barring a failed checkpoint write, absent here).
    EXPECT_LE(fs.lost_training_iterations, 5 * fs.rollbacks);
    EXPECT_EQ(res.training_iterations, 30u);
    EXPECT_GT(res.committed_training_iterations, 0u);
}

// ---------------------------------------------------------------------
// Determinism and the zero-rate guarantee
// ---------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedAndPlanIsBitIdentical)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);

    auto run_once = [&] {
        sim::Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
        sim::RunSpec spec;
        spec.warmup_requests = 30;
        spec.measure_requests = 500;
        spec.seed = 17;
        spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
        spec.faults.seed = 23;
        spec.faults.dram_bit_error_rate = 1e-7;
        spec.faults.host_drop_prob = 0.05;
        spec.faults.mmu_hang_rate_per_s = 200.0;
        return accel.run(spec);
    };

    auto a = run_once();
    auto b = run_once();

    EXPECT_GT(a.faults.totalFaults(), 0u);
    EXPECT_EQ(a.fault_trace, b.fault_trace);
    EXPECT_EQ(a.faults.dram_corrected, b.faults.dram_corrected);
    EXPECT_EQ(a.faults.dram_uncorrectable, b.faults.dram_uncorrectable);
    EXPECT_EQ(a.faults.host_drops, b.faults.host_drops);
    EXPECT_EQ(a.faults.host_retries, b.faults.host_retries);
    EXPECT_EQ(a.faults.mmu_hangs, b.faults.mmu_hangs);
    EXPECT_EQ(a.faults.watchdog_resets, b.faults.watchdog_resets);
    EXPECT_EQ(a.faults.rollbacks, b.faults.rollbacks);
    EXPECT_EQ(a.faults.downtime_cycles, b.faults.downtime_cycles);
    EXPECT_EQ(a.completed_requests, b.completed_requests);
    EXPECT_EQ(a.training_iterations, b.training_iterations);
    EXPECT_EQ(a.mean_latency_s, b.mean_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
    EXPECT_EQ(a.availability, b.availability);
}

TEST(FaultDeterminism, ZeroRatePlanIsIdenticalToNoPlan)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);

    auto run_once = [&](bool touch_policies) {
        sim::Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        sim::RunSpec spec;
        spec.warmup_requests = 30;
        spec.measure_requests = 500;
        spec.seed = 9;
        spec.arrival_rate_per_s = 0.5 * accel.maxRequestRate();
        if (touch_policies) {
            // Policy knobs without any fault process must change nothing.
            spec.faults.retry.max_retries = 3;
            spec.faults.watchdog.timeout_s = 1e-3;
            spec.faults.checkpoint.interval_iterations = 2;
        }
        return accel.run(spec);
    };

    auto plain = run_once(false);
    auto zero = run_once(true);

    EXPECT_EQ(zero.faults.totalFaults(), 0u);
    EXPECT_TRUE(zero.fault_trace.empty());
    EXPECT_EQ(zero.availability, 1.0);
    EXPECT_EQ(plain.completed_requests, zero.completed_requests);
    EXPECT_EQ(plain.mean_latency_s, zero.mean_latency_s);
    EXPECT_EQ(plain.p99_latency_s, zero.p99_latency_s);
    EXPECT_EQ(plain.inference_throughput_ops,
              zero.inference_throughput_ops);
}

} // namespace
} // namespace equinox

/**
 * @file
 * Tests for the extension features: bursty arrivals, multi-tenant
 * inference contexts, configurable training lowering, and staging-buffer
 * degradation.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace sim
{
namespace
{

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "test";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn(std::size_t hidden = 64)
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = hidden;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

TEST(BurstyArrivals, DeliversTheConfiguredMeanRate)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));

    RunSpec spec;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.arrival_process = ArrivalProcess::Bursty;
    spec.burst_factor = 4.0;
    spec.burst_period_s = 1e-3;
    spec.warmup_requests = 100;
    spec.measure_requests = 3000;
    auto res = accel.run(spec);

    double offered = 0.4 * accel.maxInferenceOpRate();
    EXPECT_NEAR(res.inference_throughput_ops / offered, 1.0, 0.12);
}

TEST(BurstyArrivals, WorseTailThanPoissonAtEqualMeanLoad)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    auto p99_of = [&](ArrivalProcess process) {
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.6 * accel.maxRequestRate();
        spec.arrival_process = process;
        spec.burst_factor = 6.0;
        spec.burst_period_s = 2e-3;
        spec.warmup_requests = 100;
        spec.measure_requests = 3000;
        return accel.run(spec).p99_latency_s;
    };
    EXPECT_GT(p99_of(ArrivalProcess::Bursty),
              p99_of(ArrivalProcess::Poisson));
}

TEST(MultiTenant, TwoServicesShareTheArray)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn(64)));
    accel.installInference(compiler.compileInference(tinyRnn(48)));

    RunSpec spec;
    spec.arrival_rates = {0.25 * accel.maxRequestRate(0),
                          0.25 * accel.maxRequestRate(1)};
    spec.warmup_requests = 200;
    spec.measure_requests = 3000;
    auto res = accel.run(spec);

    double offered = 0.25 * accel.maxInferenceOpRate(0) +
                     0.25 * accel.maxInferenceOpRate(1);
    EXPECT_NEAR(res.inference_throughput_ops / offered, 1.0, 0.1);
    EXPECT_GT(res.batches_formed, 0u);
}

TEST(MultiTenant, PerContextBufferSpaceIsExclusive)
{
    auto cfg = smallConfig();
    cfg.weight_buffer_bytes = 64 * 1024; // fits one tiny model, not two
    workload::Compiler compiler(cfg);
    auto svc = compiler.compileInference(tinyRnn(128));
    ASSERT_GT(svc.weight_footprint, 32u * 1024);
    EXPECT_DEATH(
        {
            Accelerator accel(cfg);
            workload::Compiler c2(cfg);
            accel.installInference(c2.compileInference(tinyRnn(128)));
            accel.installInference(c2.compileInference(tinyRnn(128)));
        },
        "exceed the weight buffer");
}

TEST(TrainingOptions, GradWindowCutsDramTraffic)
{
    workload::Compiler compiler(smallConfig());
    auto bytes_with = [&](std::size_t window) {
        workload::TrainingCompileOptions topts;
        topts.grad_window = window;
        auto t = compiler.compileTraining(tinyRnn(), 16, topts);
        double b = 0.0;
        for (const auto &s : t.iteration.steps)
            b += static_cast<double>(s.mmu.stream_bytes + s.store_bytes);
        return b;
    };
    double w1 = bytes_with(1);
    double w2 = bytes_with(2);
    double w4 = bytes_with(4);
    EXPECT_GT(w1, w2);
    EXPECT_GT(w2, w4);
}

TEST(TrainingOptions, GradWindowShrinksWgradStepCount)
{
    workload::Compiler compiler(smallConfig());
    auto steps_with = [&](std::size_t window) {
        workload::TrainingCompileOptions topts;
        topts.grad_window = window;
        return compiler.compileTraining(tinyRnn(), 16, topts)
            .iteration.steps.size();
    };
    // tinyRnn has 4 steps with one group: fwd 4 + dgrad 4 + wgrad
    // ceil(4/window).
    EXPECT_EQ(steps_with(1), 4u + 4 + 4);
    EXPECT_EQ(steps_with(2), 4u + 4 + 2);
    EXPECT_EQ(steps_with(4), 4u + 4 + 1);
}

TEST(TrainingOptions, AccumulatorPrecisionScalesGradientBytes)
{
    workload::Compiler compiler(smallConfig());
    auto store_bytes = [&](double acc) {
        workload::TrainingCompileOptions topts;
        topts.grad_acc_bytes = acc;
        auto t = compiler.compileTraining(tinyRnn(), 16, topts);
        ByteCount b = 0;
        for (const auto &s : t.iteration.steps)
            b += s.store_bytes;
        return b;
    };
    // Store traffic is gradient-dominated in this tiny model, so fp32
    // accumulators roughly double the bf16 stores.
    double ratio = static_cast<double>(store_bytes(4.0)) /
                   static_cast<double>(store_bytes(2.0));
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 2.1);
}

TEST(TrainingOptions, WindowOpsAreConserved)
{
    workload::Compiler compiler(smallConfig());
    workload::TrainingCompileOptions w1, w4;
    w1.grad_window = 1;
    w4.grad_window = 4;
    auto a = compiler.compileTraining(tinyRnn(), 16, w1);
    auto b = compiler.compileTraining(tinyRnn(), 16, w4);
    EXPECT_EQ(a.iteration.totalRealOps(), b.iteration.totalRealOps());
}

TEST(TrainingOptionsDeath, ZeroWindowIsFatal)
{
    workload::Compiler compiler(smallConfig());
    workload::TrainingCompileOptions topts;
    topts.grad_window = 0;
    EXPECT_DEATH(compiler.compileTraining(tinyRnn(), 16, topts),
                 "gradient window");
}

TEST(StagingBuffer, TinyStagingDegradesWithoutHanging)
{
    auto cfg = smallConfig();
    cfg.train_staging_frac = 0.0002; // a few KiB
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 3;
    spec.max_sim_s = 0.2; // bail out quickly if starved
    auto res = accel.run(spec);
    // Either it limps along in sub-chunk transfers or it cannot hold one
    // tile's operands and stalls -- but the run must terminate.
    EXPECT_LE(res.training_iterations, 3u);
}

TEST(StagingBuffer, LargerStagingNeverHurtsTraining)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    double prev = -1.0;
    for (double frac : {0.01, 0.02, 0.08}) {
        auto c = cfg;
        c.train_staging_frac = frac;
        workload::Compiler comp(c);
        Accelerator accel(c);
        accel.installInference(comp.compileInference(tinyRnn()));
        accel.installTraining(comp.compileTraining(tinyRnn(), 16));
        RunSpec spec;
        spec.arrival_rate_per_s = 0.0;
        spec.measure_iterations = 20;
        auto res = accel.run(spec);
        EXPECT_GE(res.training_throughput_ops, prev * 0.98)
            << "frac " << frac;
        prev = res.training_throughput_ops;
    }
}

} // namespace
} // namespace sim
} // namespace equinox

// Appended: per-service latency reporting.

namespace equinox
{
namespace sim
{
namespace
{

TEST(PerServiceStats, SplitsLatenciesByContext)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    Accelerator accel(cfg);
    // A fast service and a slow one (4x the steps).
    auto slow = tinyRnn();
    slow.rnn.steps = 16;
    slow.name = "slow";
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installInference(compiler.compileInference(slow));

    RunSpec spec;
    spec.arrival_rates = {0.3 * accel.maxRequestRate(0),
                          0.3 * accel.maxRequestRate(1)};
    spec.warmup_requests = 200;
    spec.measure_requests = 3000;
    auto res = accel.run(spec);

    ASSERT_EQ(res.per_service.size(), 2u);
    EXPECT_GT(res.per_service[0].completed, 0u);
    EXPECT_GT(res.per_service[1].completed, 0u);
    EXPECT_EQ(res.per_service[0].completed +
                  res.per_service[1].completed,
              res.completed_requests);
    // The slow service's latency dominates.
    EXPECT_GT(res.per_service[1].mean_latency_s,
              res.per_service[0].mean_latency_s);
    // The combined p99 brackets the per-service ones.
    EXPECT_GE(res.max_latency_s, res.per_service[1].p99_latency_s * 0.99);
}

} // namespace
} // namespace sim
} // namespace equinox

/**
 * @file
 * Parameterized property sweeps over the simulator: invariants that must
 * hold for every (scheduling policy, batching policy, load, seed)
 * combination.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace sim
{
namespace
{

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "prop";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

using PropertyParam =
    std::tuple<SchedPolicy, BatchPolicy, double /*load*/,
               std::uint64_t /*seed*/>;

class SimInvariants : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    SimResult
    runCase(bool with_training)
    {
        auto [sched, batch, load, seed] = GetParam();
        auto cfg = smallConfig();
        cfg.sched_policy = sched;
        cfg.batch_policy = batch;
        workload::Compiler compiler(cfg);
        Accelerator accel(cfg);
        accel.installInference(compiler.compileInference(tinyRnn()));
        if (with_training)
            accel.installTraining(compiler.compileTraining(tinyRnn(),
                                                           16));
        RunSpec spec;
        spec.arrival_rate_per_s = load * accel.maxRequestRate();
        spec.warmup_requests = 50;
        spec.measure_requests = 800;
        spec.seed = seed;
        spec.max_sim_s = 10.0;
        max_rate = accel.maxInferenceOpRate();
        auto train = compiler.compileTraining(tinyRnn(), 16);
        double bytes = 0.0;
        for (const auto &s : train.iteration.steps)
            bytes += static_cast<double>(s.mmu.stream_bytes +
                                         s.store_bytes);
        dram_train_bound =
            static_cast<double>(train.iteration.totalRealOps()) / bytes *
            cfg.dram.bandwidth_bytes_per_s;
        frequency = cfg.frequency_hz;
        return accel.run(spec);
    }

    double max_rate = 0.0;
    double dram_train_bound = 0.0;
    double frequency = 0.0;
};

TEST_P(SimInvariants, BreakdownAccountsForAllTime)
{
    for (bool training : {false, true}) {
        auto res = runCase(training);
        double total_cycles = res.sim_seconds * frequency;
        EXPECT_NEAR(res.mmu_breakdown.total() / total_cycles, 1.0, 0.03)
            << "training=" << training;
        for (auto c : {stats::CycleClass::Working,
                       stats::CycleClass::Dummy, stats::CycleClass::Idle,
                       stats::CycleClass::Other}) {
            EXPECT_GE(res.mmu_breakdown.get(c), 0.0);
        }
    }
}

TEST_P(SimInvariants, ThroughputNeverExceedsAnalyticCaps)
{
    auto res = runCase(true);
    EXPECT_LE(res.inference_throughput_ops, max_rate * 1.02);
    EXPECT_LE(res.training_throughput_ops, dram_train_bound * 1.02);
}

TEST_P(SimInvariants, LatencyOrderingHolds)
{
    auto res = runCase(false);
    if (res.completed_requests == 0)
        return;
    EXPECT_GE(res.p99_latency_s, res.p50_latency_s);
    EXPECT_GE(res.max_latency_s, res.p99_latency_s * 0.999);
    EXPECT_GT(res.mean_latency_s, 0.0);
    // No request can finish faster than one batch's pure service time
    // divided among... it must at least cover the program's MMU time.
    EXPECT_GT(res.mean_service_s, 0.0);
}

TEST_P(SimInvariants, WorkingCyclesMatchDeliveredOps)
{
    // Working MMU cycles x peak MAC rate must equal delivered useful
    // ops (inference + training) exactly -- the accounting identity
    // behind Figure 8.
    auto res = runCase(true);
    auto cfg = smallConfig();
    double working_ops = res.mmu_breakdown.get(
                             stats::CycleClass::Working) *
                         2.0 * static_cast<double>(cfg.macsPerCycle());
    double delivered = (res.inference_throughput_ops +
                        res.training_throughput_ops) *
                       res.sim_seconds;
    if (delivered > 0.0) {
        EXPECT_NEAR(working_ops / delivered, 1.0, 0.03);
    }
}

TEST_P(SimInvariants, DeterministicGivenSeed)
{
    auto a = runCase(true);
    auto b = runCase(true);
    EXPECT_DOUBLE_EQ(a.inference_throughput_ops,
                     b.inference_throughput_ops);
    EXPECT_DOUBLE_EQ(a.training_throughput_ops,
                     b.training_throughput_ops);
    EXPECT_DOUBLE_EQ(a.p99_latency_s, b.p99_latency_s);
}

std::string
propertyParamName(const ::testing::TestParamInfo<PropertyParam> &info)
{
    std::string name = schedPolicyName(std::get<0>(info.param));
    name += '_';
    name += batchPolicyName(std::get<1>(info.param));
    name += "_l" + std::to_string(
                       static_cast<int>(std::get<2>(info.param) * 100));
    name += "_s" + std::to_string(std::get<3>(info.param));
    for (auto &c : name) {
        if (c == '-')
            c = '_';
    }
    return name;
}

INSTANTIATE_TEST_SUITE_P(
    PolicyLoadSweep, SimInvariants,
    ::testing::Combine(
        ::testing::Values(SchedPolicy::InferenceOnly,
                          SchedPolicy::Priority, SchedPolicy::FairShare,
                          SchedPolicy::SoftwareBatch),
        ::testing::Values(BatchPolicy::Adaptive, BatchPolicy::Static),
        ::testing::Values(0.15, 0.6, 0.9),
        ::testing::Values(1u, 42u)),
    propertyParamName);

} // namespace
} // namespace sim
} // namespace equinox

/**
 * @file
 * Property tests for the cluster layer.
 *
 * The heart is a randomized sweep: ~50 seeded configurations drawn
 * over replica count, routing policy, load (including overload),
 * arrival process, fault plans, planned outages, training placement
 * and jobs count, each checked against invariants that must hold for
 * EVERY configuration:
 *
 *  - request conservation: router candidates are exactly assigned +
 *    shed; every replica's admissions equal retirements + in-flight
 *    at the horizon,
 *  - per-replica time never runs backwards (trace ticks monotone),
 *  - every retired request's latency is at least the workload's
 *    minimum service time (the full-batch MMU busy cycles),
 *  - the merged cluster percentiles equal exact percentiles over the
 *    concatenated per-replica samples, bit for bit.
 *
 * Around it sit deterministic unit tests of the Router, the
 * ReplicaEstimator, spec validation, the merged Perfetto export and
 * the MetricsSnapshot cluster section -- the pieces the randomized
 * sweep exercises but cannot pin point-wise.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "cluster/cluster.hh"
#include "cluster/router.hh"
#include "cluster/sweep.hh"
#include "cluster_digest.hh"
#include "common/random.hh"
#include "obs/chrome_trace.hh"
#include "obs/metrics_snapshot.hh"
#include "sim/blocks/trace.hh"

namespace equinox
{
namespace
{

core::ExperimentOptions
baseOptions()
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    // Runs here need a couple of simulated milliseconds; a tight
    // horizon keeps the pre-routed candidate streams small.
    opts.max_sim_s = 0.02;
    return opts;
}

// ---------------------------------------------------------------------
// ReplicaEstimator

TEST(ReplicaEstimator, BacklogGrowsOnAssignAndDrainsOverTime)
{
    cluster::ReplicaEstimator est(0.01, 4); // 1 request per 100 cycles
    EXPECT_DOUBLE_EQ(est.backlog(), 0.0);
    est.assign(0);
    est.assign(0);
    EXPECT_DOUBLE_EQ(est.backlog(), 2.0);
    EXPECT_EQ(est.assigned(), 2u);
    // 100 cycles drain one request's worth of fluid.
    est.drainTo(100);
    EXPECT_DOUBLE_EQ(est.backlog(), 1.0);
    // The drain clamps at empty instead of going negative.
    est.drainTo(1000000);
    EXPECT_DOUBLE_EQ(est.backlog(), 0.0);
}

TEST(ReplicaEstimator, LatencyEstimateCountsTheNewRequest)
{
    cluster::ReplicaEstimator est(0.01, 4);
    // Empty queue: the new request still waits its own service time.
    EXPECT_DOUBLE_EQ(est.estimatedLatencyCycles(), 100.0);
    est.assign(0);
    EXPECT_DOUBLE_EQ(est.estimatedLatencyCycles(), 200.0);
}

TEST(ReplicaEstimator, WindowP99IsOverTheLastWindowEstimates)
{
    cluster::ReplicaEstimator est(0.01, 2);
    est.assign(0); // estimate 100 enters the window
    est.assign(0); // estimate 200
    est.assign(0); // estimate 300; window keeps {200, 300}
    stats::LatencyTracker expect;
    expect.record(200.0);
    expect.record(300.0);
    EXPECT_DOUBLE_EQ(est.windowP99(), expect.percentile(0.99));
}

// ---------------------------------------------------------------------
// Router

TEST(Router, RoundRobinCyclesReplicas)
{
    cluster::Router router(cluster::RoutingPolicy::RoundRobin, 3, 0.01,
                           4, {});
    EXPECT_EQ(router.pick(1), 0u);
    EXPECT_EQ(router.pick(2), 1u);
    EXPECT_EQ(router.pick(3), 2u);
    EXPECT_EQ(router.pick(4), 0u);
    EXPECT_EQ(router.reroutedCount(), 0u);
}

TEST(Router, RoundRobinReroutesAroundOutage)
{
    cluster::Router router(cluster::RoutingPolicy::RoundRobin, 3, 0.01,
                           4, {{1, 0, 100}});
    EXPECT_FALSE(router.alive(1, 0));
    EXPECT_TRUE(router.alive(1, 100)); // [from, to) half-open
    EXPECT_EQ(router.pick(1), 0u);
    EXPECT_EQ(router.pick(2), 2u); // 1 is down: skipped, counted
    EXPECT_EQ(router.reroutedCount(), 1u);
    EXPECT_EQ(router.pick(200), 0u);
    EXPECT_EQ(router.pick(201), 1u); // outage over: back in rotation
}

TEST(Router, ShedsWhenEveryReplicaIsDown)
{
    cluster::Router router(cluster::RoutingPolicy::RoundRobin, 2, 0.01,
                           4, {{0, 0, 100}, {1, 0, 100}});
    EXPECT_EQ(router.pick(10), cluster::kNoReplica);
    EXPECT_EQ(router.shedCount(), 1u);
    EXPECT_NE(router.pick(150), cluster::kNoReplica);
}

TEST(Router, JoinShortestQueuePrefersEmptiestTieToLowestIndex)
{
    cluster::Router router(cluster::RoutingPolicy::JoinShortestQueue, 3,
                           0.01, 4, {});
    // All empty: tie breaks to replica 0, then its backlog sends the
    // next two picks to 1 and 2, then the cycle restarts.
    EXPECT_EQ(router.pick(0), 0u);
    EXPECT_EQ(router.pick(0), 1u);
    EXPECT_EQ(router.pick(0), 2u);
    EXPECT_EQ(router.pick(0), 0u);
    // After a long drain everything is empty again: lowest index wins.
    EXPECT_EQ(router.pick(1000000), 0u);
}

TEST(Router, JoinShortestQueueRoutesAroundOutage)
{
    cluster::Router router(cluster::RoutingPolicy::JoinShortestQueue, 2,
                           0.01, 4, {{0, 0, 1000}});
    EXPECT_EQ(router.pick(0), 1u);
    EXPECT_EQ(router.pick(0), 1u);
    EXPECT_EQ(router.reroutedCount(), 2u);
    EXPECT_EQ(router.pick(5000), 0u); // healthy and emptier now
}

TEST(Router, LatencyAwarePrefersLowestWindowP99)
{
    cluster::Router router(cluster::RoutingPolicy::LatencyAware, 2,
                           0.01, 8, {});
    // Untouched windows are empty (p99 = 0): the tie goes to replica
    // 0, whose window then holds one 100-cycle estimate, so replica
    // 1's still-empty window wins the next pick. Once both windows
    // hold {100} the tie again goes to the lowest index.
    EXPECT_EQ(router.pick(0), 0u);
    EXPECT_EQ(router.pick(0), 1u);
    EXPECT_EQ(router.pick(0), 0u);
}

TEST(Router, RouteConservesCandidatesAndEmitsSortedTraces)
{
    for (auto policy : cluster::allRoutingPolicies()) {
        cluster::Router router(policy, 3, 0.01, 8, {{2, 0, 5000}});
        cluster::RouterResult r = router.route(0.002, 11, 100000);
        std::uint64_t assigned = 0;
        for (std::size_t i = 0; i < 3; ++i) {
            EXPECT_EQ(r.assigned[i], r.traces[i].size());
            assigned += r.assigned[i];
            for (std::size_t k = 1; k < r.traces[i].size(); ++k)
                EXPECT_LT(r.traces[i][k - 1], r.traces[i][k]);
        }
        EXPECT_EQ(r.generated, assigned + r.shed);
        EXPECT_EQ(r.shed, 0u) << "replicas 0/1 stayed up";
        EXPECT_GT(r.rerouted, 0u) << "replica 2's outage saw traffic";
        // The stream includes exactly one candidate past the horizon
        // (the event loop's one-past-the-end dispatch pattern).
        Tick last = 0;
        for (std::size_t i = 0; i < 3; ++i)
            if (!r.traces[i].empty())
                last = std::max(last, r.traces[i].back());
        EXPECT_GT(last, 100000u);
    }
}

TEST(Router, SingleReplicaRouteReplaysTheDispatcherRecipe)
{
    // The byte-identity contract: one replica's trace is exactly the
    // candidate sequence RequestDispatcher would draw itself.
    const std::uint64_t seed = 17;
    const double rate = 0.003;
    const Tick horizon = 50000;
    cluster::Router router(cluster::RoutingPolicy::RoundRobin, 1, 0.01,
                           4, {});
    cluster::RouterResult r = router.route(rate, seed, horizon);

    std::vector<Tick> expect;
    Rng rng(seed * 7919 + 1);
    Tick t = 0;
    while (true) {
        t += static_cast<Tick>(rng.exponential(rate)) + 1;
        expect.push_back(t);
        if (t > horizon)
            break;
    }
    EXPECT_EQ(r.traces[0], expect);
    EXPECT_EQ(r.generated, expect.size());
}

TEST(Router, ZeroRateYieldsNoTraffic)
{
    cluster::Router router(cluster::RoutingPolicy::RoundRobin, 2, 0.01,
                           4, {});
    cluster::RouterResult r = router.route(0.0, 1, 1000);
    EXPECT_EQ(r.generated, 0u);
    EXPECT_TRUE(r.traces[0].empty());
    EXPECT_TRUE(r.traces[1].empty());
}

// ---------------------------------------------------------------------
// Spec validation

TEST(ClusterSpecValidate, ReportsEveryProblem)
{
    cluster::ClusterSpec spec;
    spec.replicas = 0;
    spec.latency_window = 0;
    spec.burst_factor = 0.5;
    spec.arrival_process = sim::ArrivalProcess::Bursty;
    spec.burst_period_s = 0.0;
    spec.outages.push_back({7, 0.0, 1.0});
    spec.outages.push_back({0, 2.0, 1.0});
    spec.replica_faults.resize(3);
    // replicas 0, window 0, burst factor, burst period, both outage
    // replicas out of range, one reversed window, fault-plan count.
    auto errors = spec.validate();
    EXPECT_EQ(errors.size(), 8u);

    cluster::ClusterSpec ok;
    EXPECT_TRUE(ok.validate().empty());
}

TEST(ClusterSpecValidateDeath, ConstructorRefusesBadSpec)
{
    cluster::ClusterSpec spec;
    spec.replicas = 0;
    EXPECT_DEATH(cluster::Cluster(testutil::smallConfig(), spec),
                 "invalid cluster spec");
}

// ---------------------------------------------------------------------
// The randomized property sweep.

struct DrawnConfig
{
    cluster::ClusterSpec spec;
    core::ExperimentOptions opts;
    double load = 0.0;
};

DrawnConfig
drawConfig(Rng &meta, std::size_t index)
{
    DrawnConfig c;
    c.opts = baseOptions();
    c.opts.seed = 100 + index;
    c.opts.warmup_requests = meta.uniformInt(0, 40);
    c.opts.measure_requests = 120 + meta.uniformInt(0, 180);
    c.opts.jobs = std::size_t{1} << meta.uniformInt(0, 2); // 1, 2 or 4

    static const std::size_t replica_choices[] = {1, 2, 2, 3, 4, 4, 8};
    c.spec.replicas = replica_choices[meta.uniformInt(0, 6)];
    auto policies = cluster::allRoutingPolicies();
    c.spec.policy = policies[meta.uniformInt(0, policies.size() - 1)];
    c.spec.latency_window = 1 + meta.uniformInt(0, 63);
    c.spec.train_replicas = meta.uniformInt(0, c.spec.replicas);
    if (meta.uniform() < 0.2)
        c.opts.train_model.reset(); // inference-only fleet

    if (meta.uniform() < 0.3) {
        c.spec.arrival_process = sim::ArrivalProcess::Bursty;
        c.spec.burst_factor = meta.uniform(2.0, 6.0);
        c.spec.burst_period_s = meta.uniform(5e-4, 4e-3);
    }
    if (meta.uniform() < 0.35) {
        fault::FaultPlan plan = testutil::densePlan();
        plan.seed = 1000 + index;
        plan.host_drop_prob = meta.uniform(0.0, 0.05);
        plan.mmu_hang_rate_per_s = meta.uniform(0.0, 150.0);
        c.opts.fault_plan = plan;
    }
    if (meta.uniform() < 0.25) {
        double from = meta.uniform(0.0, 0.005);
        c.spec.outages.push_back(
            {meta.uniformInt(0, c.spec.replicas - 1), from,
             from + meta.uniform(0.0005, 0.01)});
    }
    // Loads from light to mild overload.
    c.load = meta.uniform(0.05, 1.1);
    return c;
}

TEST(ClusterProperties, RandomConfigsUpholdInvariants)
{
    auto cfg = testutil::smallConfig();
    const double min_service_cycles = [&] {
        auto opts = baseOptions();
        auto compiled = core::compileWorkload(cfg, opts);
        return static_cast<double>(
            compiled.inference.program.mmuBusyCycles());
    }();

    Rng meta(20260806);
    const int kConfigs = 52;
    for (int i = 0; i < kConfigs; ++i) {
        DrawnConfig c = drawConfig(meta, static_cast<std::size_t>(i));
        SCOPED_TRACE(::testing::Message()
                     << "config " << i << ": replicas "
                     << c.spec.replicas << " policy "
                     << cluster::routingPolicyName(c.spec.policy)
                     << " load " << c.load << " jobs " << c.opts.jobs);

        auto compiled = core::compileWorkload(cfg, c.opts);
        cluster::Cluster fleet(cfg, c.spec);

        // One bounded in-memory sink per replica: the events double as
        // the monotone-time witnesses.
        std::vector<sim::VectorTraceSink> sinks(c.spec.replicas);
        std::vector<sim::TraceSink *> sink_ptrs;
        for (auto &s : sinks)
            sink_ptrs.push_back(&s);

        cluster::ClusterPointResult res =
            fleet.run(c.load, c.opts, compiled, sink_ptrs);

        // Router-side conservation: every generated candidate is
        // assigned to exactly one replica or shed.
        std::uint64_t assigned = 0;
        for (const auto &rep : res.per_replica)
            assigned += rep.assigned_candidates;
        EXPECT_EQ(res.generated_candidates, assigned + res.router_shed);

        // Replica-side conservation at the horizon, per replica and
        // summed: admissions all either retired or still in flight.
        std::uint64_t sum_admitted = 0, sum_retired = 0, sum_inflight = 0;
        for (const auto &rep : res.per_replica) {
            const sim::SimResult &s = rep.sim;
            EXPECT_EQ(s.admitted_requests,
                      s.retired_requests + s.inflight_requests)
                << "replica " << rep.replica;
            // Admissions never exceed the candidates routed here
            // (thinning, early stop and storm shedding only remove).
            EXPECT_LE(s.admitted_requests + s.faults.shed_requests,
                      rep.assigned_candidates);
            sum_admitted += s.admitted_requests;
            sum_retired += s.retired_requests;
            sum_inflight += s.inflight_requests;
        }
        EXPECT_EQ(res.admitted_requests, sum_admitted);
        EXPECT_EQ(res.retired_requests, sum_retired);
        EXPECT_EQ(res.inflight_requests, sum_inflight);
        EXPECT_EQ(res.admitted_requests,
                  res.retired_requests + res.inflight_requests);

        // Simulated time never runs backwards on any replica.
        for (std::size_t r = 0; r < sinks.size(); ++r) {
            const auto &evs = sinks[r].events();
            for (std::size_t k = 1; k < evs.size(); ++k)
                ASSERT_GE(evs[k].tick, evs[k - 1].tick)
                    << "replica " << r << " event " << k;
        }

        // Every measured request took at least the workload's minimum
        // service time (one full batch through the MMU).
        for (const auto &rep : res.per_replica)
            for (double sample : rep.sim.latency_cycles.rawSamples())
                ASSERT_GE(sample, min_service_cycles)
                    << "replica " << rep.replica;

        // The merged percentiles are exact order statistics of the
        // concatenated per-replica samples -- bit for bit.
        stats::LatencyTracker concat;
        for (const auto &rep : res.per_replica)
            for (double sample : rep.sim.latency_cycles.rawSamples())
                concat.record(sample);
        ASSERT_EQ(res.merged_latency_cycles.count(), concat.count());
        if (concat.count() > 0) {
            for (double p : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
                EXPECT_EQ(res.merged_latency_cycles.percentile(p),
                          concat.percentile(p))
                    << "p" << p;
            EXPECT_EQ(res.merged_latency_cycles.max(), concat.max());
            EXPECT_DOUBLE_EQ(res.merged_latency_cycles.mean(),
                             concat.mean());
        }

        // Availability is a fraction of the fleet-wide horizon; a
        // planned outage always costs some of it.
        EXPECT_GE(res.availability, 0.0);
        EXPECT_LE(res.availability, 1.0);
        if (!c.spec.outages.empty()) {
            EXPECT_GT(res.outage_cycles, 0u);
            EXPECT_LT(res.availability, 1.0);
        }

        // The training coordinator places exactly the requested number
        // of training services (everywhere when 0).
        std::size_t training = 0;
        for (const auto &rep : res.per_replica)
            training += rep.training ? 1 : 0;
        if (!c.opts.train_model) {
            EXPECT_EQ(training, 0u);
        } else if (c.spec.train_replicas == 0) {
            EXPECT_EQ(training, c.spec.replicas);
        } else {
            EXPECT_EQ(training,
                      std::min(c.spec.train_replicas, c.spec.replicas));
        }
    }
}

// ---------------------------------------------------------------------
// Observability: merged Perfetto export and the metrics section.

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(ClusterObs, MergedTraceShowsOneProcessPerReplica)
{
    auto cfg = testutil::smallConfig();
    auto opts = baseOptions();
    auto compiled = core::compileWorkload(cfg, opts);

    cluster::ClusterSpec cspec;
    cspec.replicas = 2;
    cluster::Cluster fleet(cfg, cspec);

    obs::ChromeTraceSink s0(cfg.frequency_hz, 1u << 22, 0, "replica-0");
    obs::ChromeTraceSink s1(cfg.frequency_hz, 1u << 22, 1, "replica-1");
    fleet.run(0.5, opts, compiled, {&s0, &s1});
    ASSERT_GT(s0.total(), 0u);
    ASSERT_GT(s1.total(), 0u);

    std::string path =
        ::testing::TempDir() + "equinox_cluster_trace.json";
    ASSERT_TRUE(obs::writeMergedTrace(path, {&s0, &s1}));

    std::string error;
    auto doc = obs::Json::parse(slurp(path), &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const obs::Json &rows = doc->at("traceEvents");
    std::set<std::int64_t> pids;
    std::set<std::string> names;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const obs::Json &ev = rows.at(i);
        pids.insert(ev.at("pid").asInt());
        if (ev.at("ph").asString() == "M" &&
            ev.at("name").asString() == "process_name")
            names.insert(ev.at("args").at("name").asString());
    }
    EXPECT_EQ(pids, (std::set<std::int64_t>{0, 1}));
    EXPECT_EQ(names, (std::set<std::string>{"replica-0", "replica-1"}));
    EXPECT_EQ(doc->at("otherData").at("events_total").asInt(),
              static_cast<std::int64_t>(s0.total() + s1.total()));

    EXPECT_FALSE(obs::writeMergedTrace("no_such_dir/sub/trace.json",
                                       {&s0, &s1}));
}

TEST(ClusterObs, SnapshotClusterSectionRoundTrips)
{
    auto cfg = testutil::smallConfig();
    auto opts = baseOptions();

    cluster::ClusterSpec cspec;
    cspec.replicas = 2;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.outages.push_back({1, 0.0, 0.002});
    opts.fault_plan = testutil::densePlan();

    auto points =
        core::runClusterSweep(cfg, cspec, {0.3, 0.7}, opts);
    obs::MetricsSnapshot snap;
    core::addClusterSweep(snap, "jsq2", points);

    std::string text = snap.toJson();
    std::string error;
    auto back = obs::MetricsSnapshot::parse(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->toJson(), text);

    auto doc = obs::Json::parse(text, &error);
    ASSERT_TRUE(doc.has_value()) << error;
    const obs::Json &sweep = doc->at("cluster").at("jsq2");
    ASSERT_EQ(sweep.size(), 2u);
    EXPECT_EQ(sweep.at(0).at("policy").asString(),
              "join_shortest_queue");
    EXPECT_EQ(sweep.at(0).at("replicas").asInt(), 2);
    ASSERT_NE(sweep.at(0).find("per_replica"), nullptr);
    ASSERT_NE(sweep.at(0).at("per_replica").find("r0"), nullptr);
    // The outage makes the fleet less than fully available.
    EXPECT_LT(sweep.at(0).at("availability").asDouble(), 1.0);
}

// ---------------------------------------------------------------------
// Appended: router outage-path coverage (overload-resilience PR).

TEST(Router, SimultaneousMultiReplicaOutageReroutesDeterministically)
{
    // Replicas 1 and 2 of 4 go dark over the same window. The
    // re-route order must be a pure function of the pick sequence:
    // round-robin advances its cursor past every dead replica and
    // lands on the survivors in rotation order, identically on every
    // replay.
    auto mkRouter = [] {
        return cluster::Router(
            cluster::RoutingPolicy::RoundRobin, 4, 0.01, 4,
            {{1, 100, 500}, {2, 100, 500}});
    };
    auto a = mkRouter();
    // Before the outage: full rotation.
    EXPECT_EQ(a.pick(1), 0u);
    EXPECT_EQ(a.pick(2), 1u);
    EXPECT_EQ(a.pick(3), 2u);
    EXPECT_EQ(a.pick(4), 3u);
    // Inside the outage: only survivors 0 and 3, in rotation order.
    EXPECT_EQ(a.pick(101), 0u);
    EXPECT_EQ(a.pick(102), 3u); // skipped 1 and 2
    EXPECT_EQ(a.pick(103), 0u);
    EXPECT_EQ(a.pick(104), 3u);
    EXPECT_EQ(a.reroutedCount(), 2u);
    // After the outage: the dead replicas rejoin the rotation.
    EXPECT_EQ(a.pick(500), 0u);
    EXPECT_EQ(a.pick(501), 1u);
    EXPECT_EQ(a.pick(502), 2u);

    // The whole routed stream replays identically.
    auto b = mkRouter();
    auto c = mkRouter();
    auto rb = b.route(2e-3, 23, 1000);
    auto rc = c.route(2e-3, 23, 1000);
    ASSERT_EQ(rb.traces.size(), rc.traces.size());
    for (std::size_t r = 0; r < rb.traces.size(); ++r)
        EXPECT_EQ(rb.traces[r], rc.traces[r]) << "replica " << r;
    EXPECT_EQ(rb.rerouted, rc.rerouted);
    EXPECT_EQ(rb.shed, rc.shed);
    // No trace contains a candidate inside its replica's dark window.
    for (std::size_t r : {std::size_t(1), std::size_t(2)})
        for (Tick t : rb.traces[r])
            EXPECT_TRUE(t < 100 || t >= 500)
                << "replica " << r << " got a candidate at " << t;
}

TEST(ClusterProperties, RequestConservationUnderMultiReplicaOutage)
{
    // admitted == retired + shed + in-flight-at-end, with a window
    // where most of the fleet is dark (so the shed path is live too).
    cluster::ClusterSpec cspec;
    cspec.replicas = 3;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.outages.push_back({0, 0.008, 0.012});
    cspec.outages.push_back({1, 0.008, 0.012});
    cspec.outages.push_back({2, 0.009, 0.011});

    auto opts = baseOptions();
    opts.jobs = 3;
    cluster::Cluster fleet(testutil::smallConfig(), cspec);
    auto r = fleet.run(
        0.8, opts, core::compileWorkload(testutil::smallConfig(), opts));

    EXPECT_GT(r.router_shed, 0u); // the full blackout really shed
    EXPECT_EQ(r.generated_candidates,
              r.router_shed +
                  [&] {
                      std::uint64_t assigned = 0;
                      for (const auto &rep : r.per_replica)
                          assigned += rep.assigned_candidates;
                      return assigned;
                  }());
    EXPECT_EQ(r.admitted_requests,
              r.retired_requests + r.inflight_requests);
}

} // namespace
} // namespace equinox

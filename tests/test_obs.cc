/**
 * @file
 * Conformance suite for the observability/export layer (src/obs/):
 *
 *  - the JSON value model round-trips every document it can serialize,
 *    deterministically (sorted keys, kind-preserving numbers);
 *  - ChromeTraceSink emits well-formed Chrome trace_event JSON with
 *    per-track monotone timestamps;
 *  - MetricsSnapshot documents parse back, and a snapshot built from a
 *    jobs=4 sweep is byte-identical to one built from the same sweep
 *    at jobs=1;
 *  - observability is perturbation-free: the golden refactor-identity
 *    digests are unchanged with a trace sink installed;
 *  - LatencyProbe reproduces the SimResult latency percentiles exactly
 *    from RequestRetired events alone.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/chrome_trace.hh"
#include "obs/json.hh"
#include "obs/latency_probe.hh"
#include "obs/metrics_snapshot.hh"
#include "sim/blocks/trace.hh"
#include "sim_digest.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/fault_stats.hh"
#include "stats/registry.hh"

namespace equinox
{
namespace obs
{
namespace
{

using testutil::digestOf;

/** FNV-1a over a serialized document (byte-identity checks). */
std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(static_cast<bool>(in)) << "cannot open " << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

// ---------------------------------------------------------------------
// Json value model

TEST(ObsJson, BuildsAndAccessesValues)
{
    Json doc = Json::object();
    doc["flag"] = true;
    doc["count"] = std::uint64_t{42};
    doc["ratio"] = 0.5;
    doc["name"] = "equinox";
    doc["list"].append(1);
    doc["list"].append(2.5);
    doc["nested"]["deep"] = std::int64_t{-7};

    EXPECT_TRUE(doc.isObject());
    EXPECT_TRUE(doc.at("flag").asBool());
    EXPECT_EQ(doc.at("count").asInt(), 42);
    EXPECT_DOUBLE_EQ(doc.at("ratio").asDouble(), 0.5);
    EXPECT_EQ(doc.at("name").asString(), "equinox");
    EXPECT_EQ(doc.at("list").size(), 2u);
    EXPECT_EQ(doc.at("list").at(0).asInt(), 1);
    EXPECT_EQ(doc.at("nested").at("deep").asInt(), -7);
    EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(ObsJson, DumpIsDeterministicAndSorted)
{
    Json a = Json::object();
    a["zeta"] = 1;
    a["alpha"] = 2;
    Json b = Json::object();
    b["alpha"] = 2;
    b["zeta"] = 1;
    EXPECT_EQ(a.dump(), b.dump());
    // Keys serialize in sorted order regardless of insertion order.
    EXPECT_LT(a.dump().find("alpha"), a.dump().find("zeta"));
}

TEST(ObsJson, RoundTripPreservesBytesAndKinds)
{
    Json doc = Json::object();
    doc["int"] = std::int64_t{-123456789012345};
    doc["whole_double"] = 3.0; // must stay a double: "3.0"
    doc["tiny"] = 6.25e-9;
    doc["neg"] = -0.125;
    doc["str"] = std::string("quote\" slash\\ nl\n tab\t ctl\x01 end");
    doc["null"] = Json();
    doc["arr"].append(false);
    doc["arr"].append(Json::object());

    std::string text = doc.dump(2);
    std::string error;
    auto back = Json::parse(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->dump(2), text);
    // Kind preserved: a whole double re-parses as Double, not Int.
    EXPECT_EQ(back->at("whole_double").kind(), Json::Kind::Double);
    EXPECT_EQ(back->at("int").kind(), Json::Kind::Int);
    // Compact form round-trips too.
    auto compact = Json::parse(doc.dump(-1), &error);
    ASSERT_TRUE(compact.has_value()) << error;
    EXPECT_EQ(compact->dump(-1), doc.dump(-1));
}

TEST(ObsJson, NonFiniteDoublesSerializeAsValidJson)
{
    Json doc = Json::object();
    doc["nan"] = std::nan("");
    doc["inf"] = std::numeric_limits<double>::infinity();
    std::string error;
    auto back = Json::parse(doc.dump(), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_TRUE(back->at("nan").isNull());
    EXPECT_TRUE(std::isinf(back->at("inf").asDouble()));
}

TEST(ObsJson, RejectsMalformedInput)
{
    const char *bad[] = {
        "",        "{",           "[1 2]",    "\"unterminated",
        "nul",     "{\"a\":}",    "[1,]",     "{\"a\":1,}",
        "1 2",     "{\"a\" 1}",   "tru",      "\"\\",
        "\"\\u12", "\"\\u12gz\"", "\"\\q\"",  "{\"a\":1 \"b\":2}",
        "99999999999999999999",   "1.2.3",    "-e",
    };
    for (const char *text : bad) {
        std::string error;
        EXPECT_FALSE(Json::parse(text, &error).has_value())
            << "accepted: " << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

TEST(ObsJson, NumericKindsConvertAtTheBoundaries)
{
    // Counters beyond int64 keep serializing, as a double.
    Json big(std::uint64_t{0xffffffffffffffffull});
    EXPECT_EQ(big.kind(), Json::Kind::Double);
    EXPECT_DOUBLE_EQ(big.asDouble(), 1.8446744073709552e19);
    EXPECT_EQ(Json(std::uint64_t{7}).kind(), Json::Kind::Int);

    // Numeric accessors coerce across Int/Double instead of asserting.
    EXPECT_EQ(Json(2.75).asInt(), 2);
    EXPECT_DOUBLE_EQ(Json(std::int64_t{-3}).asDouble(), -3.0);

    // size() counts object members; scalars have size 0; find() on a
    // non-object is an absent lookup, not an error.
    Json obj = Json::object();
    obj["a"] = 1;
    obj["b"] = 2;
    EXPECT_EQ(obj.size(), 2u);
    EXPECT_EQ(obj.members().size(), 2u);
    EXPECT_EQ(Json(1.0).size(), 0u);
    EXPECT_EQ(Json(5).find("x"), nullptr);
}

TEST(ObsJson, ParsesFullEscapeRepertoire)
{
    // The parser accepts every escape JSON allows, including the ones
    // our own serializer never emits (\/, \b, \f, multi-byte \u).
    std::string error;
    auto v = Json::parse(
        "\"a\\/b\\b\\f\\r\\n\\t\\u0041\\u00e9\\u20AC\"", &error);
    ASSERT_TRUE(v.has_value()) << error;
    EXPECT_EQ(v->asString(), "a/b\b\f\r\n\tA\xc3\xa9\xe2\x82\xac");

    // \r in a string survives a dump/parse round trip.
    Json doc("line\rfeed");
    auto back = Json::parse(doc.dump(-1), &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->asString(), "line\rfeed");

    // Empty arrays serialize compactly and parse back empty.
    EXPECT_EQ(Json::array().dump(-1), "[]");
    auto arr = Json::parse(" [ ] ", &error);
    ASSERT_TRUE(arr.has_value()) << error;
    EXPECT_TRUE(arr->isArray());
    EXPECT_EQ(arr->size(), 0u);
}

// ---------------------------------------------------------------------
// ChromeTraceSink

TEST(ObsChromeTrace, EmitsWellFormedTraceWithMonotoneTracks)
{
    ChromeTraceSink sink(units::MHz(100));
    auto res = testutil::runScenario(sim::SchedPolicy::Priority, {},
                                     &sink);
    ASSERT_GT(sink.total(), 0u);
    EXPECT_EQ(sink.dropped(), 0u);

    std::ostringstream os;
    sink.write(os);
    std::string error;
    auto doc = Json::parse(os.str(), &error);
    ASSERT_TRUE(doc.has_value()) << error;

    const Json &rows = doc->at("traceEvents");
    ASSERT_TRUE(rows.isArray());
    ASSERT_GT(rows.size(), 1u);
    EXPECT_EQ(doc->at("otherData").at("events_total").asInt(),
              static_cast<std::int64_t>(sink.total()));

    // Every event row carries the required keys; instant-event
    // timestamps are monotone non-decreasing per (pid, tid) track.
    std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts;
    std::size_t metadata = 0, instants = 0, counters = 0;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Json &ev = rows.at(i);
        const std::string &ph = ev.at("ph").asString();
        ASSERT_NE(ev.find("name"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        if (ph == "M") {
            ++metadata;
            continue;
        }
        ASSERT_NE(ev.find("ts"), nullptr);
        EXPECT_GE(ev.at("ts").asDouble(), 0.0);
        if (ph == "C") {
            ++counters;
            continue;
        }
        ASSERT_EQ(ph, "i");
        ++instants;
        auto track = std::make_pair(ev.at("pid").asInt(),
                                    ev.at("tid").asInt());
        double ts = ev.at("ts").asDouble();
        auto it = last_ts.find(track);
        if (it != last_ts.end()) {
            EXPECT_GE(ts, it->second) << "track tid "
                                      << track.second << " row " << i;
        }
        last_ts[track] = ts;
    }
    // process_name + one thread_name per track seen.
    EXPECT_EQ(metadata, 1 + last_ts.size());
    EXPECT_EQ(instants, sink.total());
    EXPECT_GT(counters, 0u);

    // The traced run itself is undisturbed (golden digest re-checked
    // exhaustively in ObsIdentity below; cheap sanity here).
    EXPECT_EQ(digestOf(res), testutil::kGoldenFaultFreePriority);
}

TEST(ObsChromeTrace, BoundedBufferCountsDrops)
{
    ChromeTraceSink sink(units::MHz(100), 4);
    sim::TraceEvent ev;
    ev.block = "test";
    for (Tick t = 0; t < 10; ++t) {
        ev.tick = t;
        sink.record(ev);
    }
    EXPECT_EQ(sink.total(), 10u);
    EXPECT_EQ(sink.dropped(), 6u);
    EXPECT_EQ(sink.toJson().at("traceEvents").size(), 1u + 1u + 4u + 4u)
        << "process meta + thread meta + 4 instants + 4 counters";
    sink.clear();
    EXPECT_EQ(sink.total(), 0u);
}

TEST(ObsChromeTrace, MultiSinkFansOutToEverySink)
{
    ChromeTraceSink a(units::MHz(100));
    sim::VectorTraceSink b;
    MultiSink fan;
    fan.add(&a);
    fan.add(&b);
    sim::TraceEvent ev;
    ev.block = "x";
    fan.record(ev);
    fan.record(ev);
    EXPECT_EQ(a.total(), 2u);
    EXPECT_EQ(b.total(), 2u);
}

TEST(ObsChromeTrace, WriteToUnwritablePathFails)
{
    ChromeTraceSink sink(units::MHz(100));
    EXPECT_FALSE(sink.writeTo("no_such_dir/sub/trace.json"));
    MetricsSnapshot snap;
    EXPECT_FALSE(snap.writeTo("no_such_dir/sub/metrics.json"));
}

// ---------------------------------------------------------------------
// Observability must not perturb simulation

TEST(ObsIdentity, GoldenDigestsUnchangedWithTraceSinkInstalled)
{
    // The exact golden constants of test_refactor_identity, re-run with
    // a ChromeTraceSink+LatencyProbe fan-out installed: installing
    // observability must not move one bit of any result.
    ChromeTraceSink trace(units::MHz(100));
    LatencyProbe probe;
    MultiSink fan;
    fan.add(&trace);
    fan.add(&probe);

    auto fault_free =
        testutil::runScenario(sim::SchedPolicy::Priority, {}, &fan);
    EXPECT_EQ(digestOf(fault_free), testutil::kGoldenFaultFreePriority);

    auto fair = testutil::runScenario(sim::SchedPolicy::FairShare, {},
                                      &fan);
    EXPECT_EQ(digestOf(fair), testutil::kGoldenFaultFreeFairShare);

    auto faulty = testutil::runScenario(sim::SchedPolicy::Priority,
                                        testutil::densePlan(), &fan);
    EXPECT_EQ(digestOf(faulty), testutil::kGoldenActiveFaultPlan);

    auto training = testutil::runTrainingOnly(&fan);
    EXPECT_EQ(digestOf(training), testutil::kGoldenTrainingOnly);

    EXPECT_GT(trace.total(), 0u);
}

TEST(ObsIdentity, SinkFreeRunTakesTheZeroCostEmitPath)
{
    // With no sink installed, SimBlock::emit() must bail on its inline
    // null check before building a TraceEvent: the process-global
    // delivery counter (bumped on the slow path only) cannot move. A
    // regression here means every block event in every untraced run --
    // i.e. all of them -- pays for observability nobody asked for.
    const std::uint64_t before = sim::traceRecordsDelivered();
    auto untraced =
        testutil::runScenario(sim::SchedPolicy::Priority, {}, nullptr);
    EXPECT_EQ(digestOf(untraced), testutil::kGoldenFaultFreePriority);
    EXPECT_EQ(sim::traceRecordsDelivered(), before);

    // Control: the same run with a sink drives the slow path.
    ChromeTraceSink trace(units::MHz(100));
    auto traced =
        testutil::runScenario(sim::SchedPolicy::Priority, {}, &trace);
    EXPECT_EQ(digestOf(traced), testutil::kGoldenFaultFreePriority);
    EXPECT_GT(sim::traceRecordsDelivered(), before);
}

TEST(ObsIdentity, SweepWithSinkMatchesUntracedSweep)
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    const std::vector<double> loads = {0.1, 0.4, 0.7};
    auto cfg = testutil::smallConfig("obs-sweep");

    auto untraced = core::runLoadSweep(cfg, loads, opts);

    // jobs=4 + sink: the engine degrades to serial, results identical.
    ChromeTraceSink sink(cfg.frequency_hz);
    opts.jobs = 4;
    opts.trace_sink = &sink;
    auto traced = core::runLoadSweep(cfg, loads, opts);

    EXPECT_GT(sink.total(), 0u);
    EXPECT_EQ(digestOf(untraced), digestOf(traced));
}

// ---------------------------------------------------------------------
// LatencyProbe

TEST(ObsLatencyProbe, ReproducesSimResultPercentilesExactly)
{
    LatencyProbe probe;
    auto res = testutil::runScenario(sim::SchedPolicy::Priority, {},
                                     &probe);

    // Same samples, same fold order, same cycle->seconds conversion:
    // the probe's report is bit-identical to the SimResult fields.
    auto cfg = testutil::smallConfig();
    auto rep = probe.report(cfg.frequency_hz);
    EXPECT_EQ(rep.count, res.completed_requests);
    EXPECT_EQ(rep.mean_s, res.mean_latency_s);
    EXPECT_EQ(rep.p50_s, res.p50_latency_s);
    EXPECT_EQ(rep.p99_s, res.p99_latency_s);
    EXPECT_EQ(rep.max_s, res.max_latency_s);

    // Per-service trackers agree with the per-service stats.
    for (const auto &svc : res.per_service) {
        const auto *t = probe.serviceCycles(svc.ctx);
        if (svc.completed == 0) {
            EXPECT_EQ(t, nullptr);
            continue;
        }
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->count(), svc.completed);
        double inv_f = 1.0 / cfg.frequency_hz;
        EXPECT_EQ(t->percentile(0.99) * inv_f, svc.p99_latency_s);
    }

    probe.clear();
    EXPECT_EQ(probe.cycles().count(), 0u);
}

TEST(ObsLatencyProbe, SkipsServicesThatRetiredNothing)
{
    // Retirements only on services 0 and 2: the probe's per-service
    // vector has a hole at 1 that lookups and exports must skip.
    LatencyProbe probe;
    sim::TraceEvent ev;
    ev.type = sim::TraceEventType::RequestRetired;
    const std::pair<ContextId, std::uint64_t> samples[] = {
        {0, 10}, {2, 30}, {0, 20}};
    for (auto [ctx, cycles] : samples) {
        ev.ctx = ctx;
        ev.a = cycles;
        probe.record(ev);
    }
    // Non-retired event types are ignored entirely.
    ev.type = sim::TraceEventType::RequestArrival;
    probe.record(ev);

    EXPECT_EQ(probe.cycles().count(), 3u);
    ASSERT_NE(probe.serviceCycles(0), nullptr);
    EXPECT_EQ(probe.serviceCycles(0)->count(), 2u);
    EXPECT_EQ(probe.serviceCycles(1), nullptr);
    EXPECT_EQ(probe.serviceCycles(7), nullptr);

    MetricsSnapshot snap;
    probe.addTo(snap, "gap", units::MHz(100));
    EXPECT_NE(snap.root().at("latency").find("gap.svc0"), nullptr);
    EXPECT_EQ(snap.root().at("latency").find("gap.svc1"), nullptr);
    EXPECT_NE(snap.root().at("latency").find("gap.svc2"), nullptr);
}

// ---------------------------------------------------------------------
// MetricsSnapshot

TEST(ObsSnapshot, RoundTripsEveryExporter)
{
    stats::StatRegistry reg;
    reg.setValue("mmu.busy_cycles", 1234.0);
    reg.registerStat("queue.depth", [] { return 7.0; });

    stats::LatencyTracker lat;
    for (double v : {1.0, 2.0, 3.0, 10.0})
        lat.record(v);

    stats::LogHistogram hist(1e-6, 1.0);
    hist.record(1e-4);
    hist.record(2e-3);
    hist.record(1e-9); // underflow

    stats::CycleBreakdown bd;
    bd.add(stats::CycleClass::Working, 60.0);
    bd.add(stats::CycleClass::Idle, 40.0);

    stats::FaultStats fs;
    fs.dram_corrected = 3;
    fs.watchdog_resets = 1;
    fs.recovery_cycles.record(50.0);

    MetricsSnapshot snap;
    snap.set("run.seed", std::uint64_t{17});
    snap.set("run.load", 0.4);
    snap.addRegistry(reg, "sim.");
    snap.addLatency("request", lat, 1e-3);
    snap.addLogHistogram("service", hist);
    snap.addCycleBreakdown("mmu", bd);
    snap.addFaultStats("run", fs);
    snap.section("sweeps")["demo"].append(Json::object());

    std::string text = snap.toJson();
    std::string error;
    auto back = MetricsSnapshot::parse(text, &error);
    ASSERT_TRUE(back.has_value()) << error;
    EXPECT_EQ(back->toJson(), text);

    const Json &root = back->root();
    EXPECT_EQ(root.at("schema_version").asInt(),
              MetricsSnapshot::kSchemaVersion);
    EXPECT_DOUBLE_EQ(
        root.at("scalars").at("sim.mmu.busy_cycles").asDouble(), 1234.0);
    EXPECT_DOUBLE_EQ(root.at("scalars").at("sim.queue.depth").asDouble(),
                     7.0);
    const Json &l = root.at("latency").at("request");
    EXPECT_EQ(l.at("count").asInt(), 4);
    EXPECT_DOUBLE_EQ(l.at("max").asDouble(), 10.0 * 1e-3);
    EXPECT_EQ(root.at("log_histograms").at("service").at("underflows")
                  .asInt(), 1);
    EXPECT_DOUBLE_EQ(
        root.at("cycle_breakdown").at("mmu").at("total").asDouble(),
        100.0);
    EXPECT_EQ(
        root.at("fault_stats").at("run").at("dram_corrected").asInt(), 3);
}

TEST(ObsSnapshot, RejectsWrongSchemaVersion)
{
    std::string error;
    EXPECT_FALSE(
        MetricsSnapshot::parse("{\"schema_version\": 999}", &error)
            .has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(MetricsSnapshot::parse("{}", nullptr).has_value());
    EXPECT_FALSE(MetricsSnapshot::parse("not json", &error).has_value());
}

TEST(ObsSnapshot, ParallelSweepSnapshotIsByteIdenticalToSerial)
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    opts.fault_plan = testutil::densePlan();
    const std::vector<double> loads = {0.1, 0.4, 0.7};
    auto cfg = testutil::smallConfig("obs-snapshot");

    opts.jobs = 1;
    auto serial = core::runLoadSweep(cfg, loads, opts);
    opts.jobs = 4;
    auto parallel = core::runLoadSweep(cfg, loads, opts);

    MetricsSnapshot snap_serial, snap_parallel;
    core::addLoadSweep(snap_serial, "sweep", serial);
    core::addLoadSweep(snap_parallel, "sweep", parallel);

    std::string a = snap_serial.toJson();
    std::string b = snap_parallel.toJson();
    EXPECT_EQ(fnv1a(a), fnv1a(b));
    EXPECT_EQ(a, b);
    // The sweep section actually carries the points.
    auto back = MetricsSnapshot::parse(a);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->root().at("sweeps").at("sweep").size(), loads.size());
}

// ---------------------------------------------------------------------
// End to end: the bench-facing files

TEST(ObsEndToEnd, TraceAndMetricsFilesWriteAndParseBack)
{
    const std::string trace_path = "test_obs_trace.json";
    const std::string metrics_path = "test_obs_metrics.json";

    auto cfg = testutil::smallConfig("obs-e2e");
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.warmup_requests = 30;
    opts.measure_requests = 200;
    opts.seed = 17;

    ChromeTraceSink trace(cfg.frequency_hz);
    LatencyProbe probe;
    MultiSink fan;
    fan.add(&trace);
    fan.add(&probe);
    opts.trace_sink = &fan;
    auto point = core::runAtLoad(cfg, 0.4, opts);

    MetricsSnapshot snap;
    core::addLoadPoint(snap, "e2e", point);
    probe.addTo(snap, "e2e", cfg.frequency_hz);
    ASSERT_TRUE(trace.writeTo(trace_path));
    ASSERT_TRUE(snap.writeTo(metrics_path));

    std::string error;
    auto trace_doc = Json::parse(slurp(trace_path), &error);
    ASSERT_TRUE(trace_doc.has_value()) << error;
    EXPECT_GT(trace_doc->at("traceEvents").size(), 0u);

    auto metrics_doc = MetricsSnapshot::parse(slurp(metrics_path),
                                              &error);
    ASSERT_TRUE(metrics_doc.has_value()) << error;
    const Json &pt = metrics_doc->root().at("sweeps").at("e2e").at(0);
    EXPECT_EQ(pt.at("completed_requests").asInt(),
              static_cast<std::int64_t>(point.sim.completed_requests));
    EXPECT_EQ(metrics_doc->root().at("latency").at("e2e").at("count")
                  .asInt(),
              static_cast<std::int64_t>(point.sim.completed_requests));

    std::remove(trace_path.c_str());
    std::remove(metrics_path.c_str());
}

} // namespace
} // namespace obs
} // namespace equinox

/**
 * @file
 * Unit and property tests for the three GEMM engines.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "arith/bfloat16.hh"
#include "arith/gemm.hh"
#include "common/random.hh"

namespace equinox
{
namespace arith
{
namespace
{

Matrix
randomMatrix(std::size_t r, std::size_t c, Rng &rng, double sd = 1.0)
{
    Matrix m(r, c);
    m.randomize(rng, sd);
    return m;
}

TEST(GemmEngine, Names)
{
    EXPECT_STREQ(encodingName(Encoding::Fp32), "fp32");
    EXPECT_STREQ(encodingName(Encoding::Bfloat16), "bfloat16");
    EXPECT_STREQ(encodingName(Encoding::Hbfp8), "hbfp8");
}

TEST(Fp32Gemm, KnownProduct)
{
    Matrix a(2, 3), b(3, 2), c(2, 2);
    float av[] = {1, 2, 3, 4, 5, 6};
    float bv[] = {7, 8, 9, 10, 11, 12};
    std::copy(av, av + 6, a.data());
    std::copy(bv, bv + 6, b.data());
    Fp32Gemm eng;
    eng.multiply(a, b, c, false);
    EXPECT_EQ(c.at(0, 0), 58.0f);
    EXPECT_EQ(c.at(0, 1), 64.0f);
    EXPECT_EQ(c.at(1, 0), 139.0f);
    EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Fp32Gemm, AccumulateAddsIntoC)
{
    Rng rng(5);
    Matrix a = randomMatrix(4, 6, rng);
    Matrix b = randomMatrix(6, 3, rng);
    Matrix c0(4, 3, 2.0f), c1(4, 3, 0.0f);
    Fp32Gemm eng;
    eng.multiply(a, b, c0, true);
    eng.multiply(a, b, c1, false);
    for (std::size_t i = 0; i < c0.size(); ++i)
        EXPECT_NEAR(c0.data()[i], c1.data()[i] + 2.0f, 1e-5);
}

TEST(Fp32Gemm, IdentityIsNeutral)
{
    Rng rng(6);
    Matrix a = randomMatrix(5, 5, rng);
    Matrix eye(5, 5);
    for (std::size_t i = 0; i < 5; ++i)
        eye.at(i, i) = 1.0f;
    Matrix c(5, 5);
    Fp32Gemm eng;
    eng.multiply(a, eye, c, false);
    EXPECT_LT(maxAbsDiff(a, c), 1e-6);
}

/** Property sweep: every engine approximates the fp32 reference with an
 *  encoding-dependent error bound. */
struct EngineErrorCase
{
    Encoding encoding;
    // Permitted max-abs error per unit operand norm for K=64 operands.
    double tolerance;
};

class GemmAccuracy : public ::testing::TestWithParam<EngineErrorCase>
{
};

TEST_P(GemmAccuracy, TracksReference)
{
    auto param = GetParam();
    auto engine = makeGemmEngine(param.encoding);
    Fp32Gemm reference;
    Rng rng(71);
    for (int trial = 0; trial < 10; ++trial) {
        std::size_t m = 1 + rng.uniformInt(0, 15);
        std::size_t k = 1 + rng.uniformInt(0, 63);
        std::size_t n = 1 + rng.uniformInt(0, 15);
        Matrix a = randomMatrix(m, k, rng);
        Matrix b = randomMatrix(k, n, rng);
        Matrix c_ref(m, n), c_eng(m, n);
        reference.multiply(a, b, c_ref, false);
        engine->multiply(a, b, c_eng, false);
        double norm = std::sqrt(static_cast<double>(k));
        EXPECT_LT(maxAbsDiff(c_ref, c_eng), param.tolerance * norm)
            << "engine " << engine->name() << " trial " << trial
            << " dims " << m << "x" << k << "x" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllEncodings, GemmAccuracy,
    ::testing::Values(EngineErrorCase{Encoding::Fp32, 1e-5},
                      EngineErrorCase{Encoding::Bfloat16, 0.05},
                      EngineErrorCase{Encoding::Hbfp8, 0.08}),
    [](const ::testing::TestParamInfo<EngineErrorCase> &info) {
        return encodingName(info.param.encoding);
    });

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemmShapes, AllEnginesHandleRaggedShapes)
{
    auto [m, k, n] = GetParam();
    Rng rng(83);
    Matrix a = randomMatrix(m, k, rng);
    Matrix b = randomMatrix(k, n, rng);
    Fp32Gemm reference;
    Matrix c_ref(m, n);
    reference.multiply(a, b, c_ref, false);
    for (auto enc : {Encoding::Bfloat16, Encoding::Hbfp8}) {
        auto engine = makeGemmEngine(enc);
        Matrix c(m, n);
        engine->multiply(a, b, c, false);
        double norm = std::sqrt(static_cast<double>(k));
        EXPECT_LT(maxAbsDiff(c_ref, c), 0.1 * norm) << engine->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    RaggedSweep, GemmShapes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 300, 1},
                      std::tuple{3, 257, 5}, std::tuple{17, 256, 2},
                      std::tuple{2, 511, 2}, std::tuple{31, 64, 31}));

TEST(HbfpGemm, BlockLengthDoesNotChangeSemanticsMuch)
{
    // Different block lengths change where quantization boundaries fall
    // but must stay within the encoding's accuracy envelope.
    Rng rng(97);
    Matrix a = randomMatrix(8, 512, rng);
    Matrix b = randomMatrix(512, 8, rng);
    Fp32Gemm reference;
    Matrix c_ref(8, 8);
    reference.multiply(a, b, c_ref, false);
    for (std::size_t blk : {64u, 128u, 256u, 512u}) {
        HbfpGemm eng(hbfp8Format(), blk);
        Matrix c(8, 8);
        eng.multiply(a, b, c, false);
        EXPECT_LT(maxAbsDiff(c_ref, c), 0.1 * std::sqrt(512.0))
            << "block " << blk;
    }
}

TEST(HbfpGemm, SmallerBlocksAreMoreAccurate)
{
    // With outliers in the operand, smaller blocks localise the shared
    // exponent damage; aggregate error should not grow when blocks shrink.
    Rng rng(101);
    Matrix a = randomMatrix(4, 512, rng);
    Matrix b = randomMatrix(512, 4, rng);
    // Inject outliers to stress shared exponents.
    for (std::size_t i = 0; i < 16; ++i)
        a.at(rng.uniformInt(0, 3), rng.uniformInt(0, 511)) *= 64.0f;

    Fp32Gemm reference;
    Matrix c_ref(4, 4);
    reference.multiply(a, b, c_ref, false);

    auto total_err = [&](std::size_t blk) {
        HbfpGemm eng(hbfp8Format(), blk);
        Matrix c(4, 4);
        eng.multiply(a, b, c, false);
        double e = 0.0;
        for (std::size_t i = 0; i < c.size(); ++i)
            e += std::abs(c.data()[i] - c_ref.data()[i]);
        return e;
    };
    EXPECT_LT(total_err(32), total_err(512) + 1e-9);
}

TEST(Bf16Gemm, OutputIsBf16Representable)
{
    Rng rng(103);
    Matrix a = randomMatrix(4, 16, rng);
    Matrix b = randomMatrix(16, 4, rng);
    Bf16Gemm eng;
    Matrix c(4, 4);
    eng.multiply(a, b, c, false);
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_EQ(c.data()[i], roundToBf16(c.data()[i]));
}

TEST(GemmEngine, FactoryCoversAllEncodings)
{
    for (auto enc : {Encoding::Fp32, Encoding::Bfloat16, Encoding::Hbfp8}) {
        auto engine = makeGemmEngine(enc);
        ASSERT_NE(engine, nullptr);
        EXPECT_EQ(engine->encoding(), enc);
    }
}

} // namespace
} // namespace arith
} // namespace equinox

/**
 * @file
 * Unit tests for the Matrix container.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arith/tensor.hh"
#include "common/random.hh"

namespace equinox
{
namespace arith
{
namespace
{

TEST(Matrix, ConstructionAndFill)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(m.at(r, c), 1.5f);
    m.zero();
    EXPECT_EQ(m.at(1, 2), 0.0f);
}

TEST(Matrix, RowMajorLayout)
{
    Matrix m(2, 3);
    float v = 0.0f;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m.at(r, c) = v++;
    // rowPtr(1) points at element (1, 0) = 3.
    EXPECT_EQ(m.rowPtr(1)[0], 3.0f);
    EXPECT_EQ(m.data()[5], 5.0f);
}

TEST(Matrix, TransposedInvolution)
{
    Rng rng(1);
    Matrix m(5, 7);
    m.randomize(rng, 1.0);
    Matrix tt = m.transposed().transposed();
    EXPECT_EQ(maxAbsDiff(m, tt), 0.0);
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 7u);
    EXPECT_EQ(t.cols(), 5u);
    EXPECT_EQ(t.at(3, 2), m.at(2, 3));
}

TEST(Matrix, FrobeniusNorm)
{
    Matrix m(1, 2);
    m.at(0, 0) = 3.0f;
    m.at(0, 1) = 4.0f;
    EXPECT_DOUBLE_EQ(m.frobeniusNorm(), 5.0);
}

TEST(Matrix, MaxAbs)
{
    Matrix m(2, 2);
    m.at(0, 0) = -9.0f;
    m.at(1, 1) = 4.0f;
    EXPECT_EQ(m.maxAbs(), 9.0f);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
    b.at(1, 0) = 3.5f;
    EXPECT_DOUBLE_EQ(maxAbsDiff(a, b), 2.5);
}

TEST(Matrix, RandomizeMoments)
{
    Rng rng(2);
    Matrix m(100, 100);
    m.randomize(rng, 0.5);
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
        sum += m.data()[i];
        sq += static_cast<double>(m.data()[i]) * m.data()[i];
    }
    double mean = sum / m.size();
    double var = sq / m.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 0.25, 0.02);
}

} // namespace
} // namespace arith
} // namespace equinox

/**
 * @file
 * Shared identity-test machinery: the FNV-1a result digest, the small
 * n=8 m=2 w=2 test design, the tiny RNN workload, and the canonical
 * mixed inference+training scenario. test_refactor_identity pins the
 * digests of the block/port refactor against golden constants,
 * test_parallel_identity compares serial vs parallel sweeps, and
 * test_obs proves observability is perturbation-free -- all three must
 * fold the exact same bits in the exact same order, so the folds live
 * here once.
 */

#ifndef EQUINOX_TESTS_SIM_DIGEST_HH
#define EQUINOX_TESTS_SIM_DIGEST_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/experiment.hh"
#include "sim/accelerator.hh"
#include "sim/result_digest.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace testutil
{

/**
 * The digest machinery itself moved to src/sim/result_digest.hh so the
 * fast-forward exactness harness (Accelerator check-exact mode) folds
 * the exact same bits as the golden suites; these aliases keep every
 * existing test spelling working. The golden constants below are
 * unchanged -- the move is a pure relocation of the fold.
 */
using ResultDigest = sim::ResultDigest;

/** Fold every SimResult field, in a fixed documented order. */
inline void
foldSim(ResultDigest &dg, const sim::SimResult &r)
{
    sim::foldSimResult(dg, r);
}

/** Digest one SimResult (the refactor-identity golden constants). */
inline std::uint64_t
digestOf(const sim::SimResult &r)
{
    return sim::resultDigest(r);
}

/** Fold a whole sweep, every field of every point, in input order. */
inline std::uint64_t
digestOf(const std::vector<core::LoadPointResult> &results)
{
    ResultDigest dg;
    dg.u64(results.size());
    for (const auto &r : results) {
        dg.d(r.load);
        foldSim(dg, r.sim);
        dg.d(r.inference_tops);
        dg.d(r.training_tops);
        dg.d(r.p99_ms);
        dg.d(r.mean_ms);
        dg.d(r.max_inference_tops);
        dg.d(r.service_time_ms);
    }
    return dg.value();
}

/** The small test design the simulator tests share: n=8 m=2 w=2. */
inline sim::AcceleratorConfig
smallConfig(const std::string &name = "identity")
{
    sim::AcceleratorConfig cfg;
    cfg.name = name;
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

inline workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/**
 * The mixed inference+training run the golden refactor-identity
 * constants were recorded from. @p sink, when given, is installed
 * before the run -- observability must not move the digest.
 */
inline sim::SimResult
runScenario(sim::SchedPolicy policy, const fault::FaultPlan &faults,
            sim::TraceSink *sink = nullptr)
{
    auto cfg = smallConfig();
    cfg.sched_policy = policy;
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    if (sink)
        accel.setTraceSink(sink);
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.seed = 17;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.faults = faults;
    return accel.run(spec);
}

/** The golden digests of runScenario / the training-only run, recorded
 * from the pre-refactor monolithic simulator. See
 * test_refactor_identity.cc for the re-recording policy. */
constexpr std::uint64_t kGoldenFaultFreePriority = 9598426128261729103ull;
constexpr std::uint64_t kGoldenFaultFreeFairShare = 3136427541025947968ull;
constexpr std::uint64_t kGoldenActiveFaultPlan = 7691949600349461230ull;
constexpr std::uint64_t kGoldenTrainingOnly = 15216487330587529517ull;

/** The fault plan of the ActiveFaultPlan golden scenario. */
inline fault::FaultPlan
densePlan()
{
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.dram_bit_error_rate = 1e-7;
    plan.host_drop_prob = 0.05;
    plan.mmu_hang_rate_per_s = 200.0;
    return plan;
}

/** The training-only golden run (25 iterations, seed 5). */
inline sim::SimResult
runTrainingOnly(sim::TraceSink *sink = nullptr)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    if (sink)
        accel.setTraceSink(sink);
    sim::RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 25;
    spec.seed = 5;
    return accel.run(spec);
}

} // namespace testutil
} // namespace equinox

#endif // EQUINOX_TESTS_SIM_DIGEST_HH

/**
 * @file
 * Shared identity-test machinery: the FNV-1a result digest, the small
 * n=8 m=2 w=2 test design, the tiny RNN workload, and the canonical
 * mixed inference+training scenario. test_refactor_identity pins the
 * digests of the block/port refactor against golden constants,
 * test_parallel_identity compares serial vs parallel sweeps, and
 * test_obs proves observability is perturbation-free -- all three must
 * fold the exact same bits in the exact same order, so the folds live
 * here once.
 */

#ifndef EQUINOX_TESTS_SIM_DIGEST_HH
#define EQUINOX_TESTS_SIM_DIGEST_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/units.hh"
#include "core/experiment.hh"
#include "sim/accelerator.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace testutil
{

/** FNV-1a over the exact bit patterns of the accumulated fields. */
class ResultDigest
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (unsigned i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ull;
        }
    }

    void
    d(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        for (unsigned char c : s) {
            h ^= c;
            h *= 1099511628211ull;
        }
    }

    std::uint64_t value() const { return h; }

  private:
    std::uint64_t h = 14695981039346656037ull;
};

/** Fold every SimResult field, in a fixed documented order. */
inline void
foldSim(ResultDigest &dg, const sim::SimResult &r)
{
    dg.d(r.sim_seconds);
    dg.u64(r.completed_requests);
    dg.d(r.offered_rate_per_s);
    dg.d(r.inference_throughput_ops);
    dg.d(r.training_throughput_ops);
    dg.d(r.mean_latency_s);
    dg.d(r.p50_latency_s);
    dg.d(r.p99_latency_s);
    dg.d(r.max_latency_s);
    dg.d(r.mean_service_s);
    for (unsigned c = 0;
         c < static_cast<unsigned>(stats::CycleClass::NumClasses); ++c)
        dg.d(r.mmu_breakdown.get(static_cast<stats::CycleClass>(c)));
    dg.u64(r.batches_formed);
    dg.u64(r.batches_incomplete);
    dg.d(r.avg_batch_fill);
    dg.d(r.dram_utilization);
    dg.u64(r.dram_train_bytes);
    dg.u64(r.host_bytes);
    dg.u64(r.training_iterations);
    dg.d(r.mmu_busy_cycles);
    dg.d(r.simd_busy_cycles);
    for (const auto &s : r.per_service) {
        dg.u64(s.ctx);
        dg.u64(s.completed);
        dg.d(s.mean_latency_s);
        dg.d(s.p99_latency_s);
    }
    dg.u64(r.faults.dram_corrected);
    dg.u64(r.faults.dram_uncorrectable);
    dg.u64(r.faults.host_drops);
    dg.u64(r.faults.host_corruptions);
    dg.u64(r.faults.mmu_hangs);
    dg.u64(r.faults.host_retries);
    dg.u64(r.faults.host_give_ups);
    dg.u64(r.faults.watchdog_resets);
    dg.u64(r.faults.checkpoints_written);
    dg.u64(r.faults.rollbacks);
    dg.u64(r.faults.lost_training_iterations);
    dg.u64(r.faults.shed_requests);
    dg.u64(r.faults.storms_entered);
    dg.u64(r.faults.downtime_cycles);
    dg.u64(r.faults.recovery_cycles.count());
    dg.d(r.faults.recovery_cycles.mean());
    dg.d(r.faults.recovery_cycles.max());
    dg.d(r.availability);
    dg.u64(r.committed_training_iterations);
    for (const auto &f : r.fault_trace) {
        dg.u64(f.tick);
        dg.u64(static_cast<std::uint64_t>(f.kind));
        dg.u64(f.bytes);
    }
}

/** Digest one SimResult (the refactor-identity golden constants). */
inline std::uint64_t
digestOf(const sim::SimResult &r)
{
    ResultDigest dg;
    foldSim(dg, r);
    return dg.value();
}

/** Fold a whole sweep, every field of every point, in input order. */
inline std::uint64_t
digestOf(const std::vector<core::LoadPointResult> &results)
{
    ResultDigest dg;
    dg.u64(results.size());
    for (const auto &r : results) {
        dg.d(r.load);
        foldSim(dg, r.sim);
        dg.d(r.inference_tops);
        dg.d(r.training_tops);
        dg.d(r.p99_ms);
        dg.d(r.mean_ms);
        dg.d(r.max_inference_tops);
        dg.d(r.service_time_ms);
    }
    return dg.value();
}

/** The small test design the simulator tests share: n=8 m=2 w=2. */
inline sim::AcceleratorConfig
smallConfig(const std::string &name = "identity")
{
    sim::AcceleratorConfig cfg;
    cfg.name = name;
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

inline workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

/**
 * The mixed inference+training run the golden refactor-identity
 * constants were recorded from. @p sink, when given, is installed
 * before the run -- observability must not move the digest.
 */
inline sim::SimResult
runScenario(sim::SchedPolicy policy, const fault::FaultPlan &faults,
            sim::TraceSink *sink = nullptr)
{
    auto cfg = smallConfig();
    cfg.sched_policy = policy;
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    if (sink)
        accel.setTraceSink(sink);
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.seed = 17;
    spec.arrival_rate_per_s = 0.4 * accel.maxRequestRate();
    spec.faults = faults;
    return accel.run(spec);
}

/** The golden digests of runScenario / the training-only run, recorded
 * from the pre-refactor monolithic simulator. See
 * test_refactor_identity.cc for the re-recording policy. */
constexpr std::uint64_t kGoldenFaultFreePriority = 9598426128261729103ull;
constexpr std::uint64_t kGoldenFaultFreeFairShare = 3136427541025947968ull;
constexpr std::uint64_t kGoldenActiveFaultPlan = 7691949600349461230ull;
constexpr std::uint64_t kGoldenTrainingOnly = 15216487330587529517ull;

/** The fault plan of the ActiveFaultPlan golden scenario. */
inline fault::FaultPlan
densePlan()
{
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.dram_bit_error_rate = 1e-7;
    plan.host_drop_prob = 0.05;
    plan.mmu_hang_rate_per_s = 200.0;
    return plan;
}

/** The training-only golden run (25 iterations, seed 5). */
inline sim::SimResult
runTrainingOnly(sim::TraceSink *sink = nullptr)
{
    auto cfg = smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(tinyRnn()));
    accel.installTraining(compiler.compileTraining(tinyRnn(), 16));
    if (sink)
        accel.setTraceSink(sink);
    sim::RunSpec spec;
    spec.arrival_rate_per_s = 0.0;
    spec.measure_iterations = 25;
    spec.seed = 5;
    return accel.run(spec);
}

} // namespace testutil
} // namespace equinox

#endif // EQUINOX_TESTS_SIM_DIGEST_HH

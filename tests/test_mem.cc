/**
 * @file
 * Unit + property suite of the memory-hierarchy subsystem (src/mem):
 * replacement lemmas against a reference map model, the scratchpad's
 * ping-pong no-overlap invariant, write-combining conservation, DCPT
 * table properties, configuration validation messages, and the
 * MemoryHierarchy facade's passthrough/LLC/write-buffer paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"
#include "dram/hbm.hh"
#include "mem/llc.hh"
#include "mem/mem_config.hh"
#include "mem/memory_hierarchy.hh"
#include "mem/prefetch.hh"
#include "mem/scratchpad.hh"
#include "mem/write_buffer.hh"

namespace equinox
{
namespace mem
{
namespace
{

// ---------------------------------------------------------------------
// Configuration validation
// ---------------------------------------------------------------------

bool
hasError(const std::vector<MemConfigError> &errors,
         const std::string &field)
{
    return std::any_of(errors.begin(), errors.end(),
                       [&field](const MemConfigError &e) {
                           return e.field == field;
                       });
}

TEST(MemConfig, DefaultIsPassthroughAndValid)
{
    MemoryHierarchyConfig cfg;
    EXPECT_TRUE(cfg.passthrough());
    EXPECT_TRUE(cfg.validate().empty());
}

TEST(MemConfig, AnyEnabledComponentLeavesPassthrough)
{
    MemoryHierarchyConfig cfg;
    cfg.scratchpad.enabled = true;
    EXPECT_FALSE(cfg.passthrough());

    cfg = {};
    cfg.llc.enabled = true;
    EXPECT_FALSE(cfg.passthrough());

    cfg = {};
    cfg.write_buffer.enabled = true;
    EXPECT_FALSE(cfg.passthrough());

    cfg = {};
    cfg.llc.enabled = true;
    cfg.prefetch.kind = PrefetchKind::NextLine;
    EXPECT_FALSE(cfg.passthrough());
}

TEST(MemConfig, RejectsSingleBankScratchpad)
{
    MemoryHierarchyConfig cfg;
    cfg.scratchpad.enabled = true;
    cfg.scratchpad.banks = 1;
    auto errors = cfg.validate();
    EXPECT_TRUE(hasError(errors, "scratchpad.banks"));
    EXPECT_NE(formatMemConfigErrors(errors).find("ping-pong"),
              std::string::npos);
}

TEST(MemConfig, RejectsTinyBank)
{
    MemoryHierarchyConfig cfg;
    cfg.scratchpad.enabled = true;
    cfg.scratchpad.bank_bytes = 256;
    EXPECT_TRUE(hasError(cfg.validate(), "scratchpad.bank_bytes"));
}

TEST(MemConfig, RejectsBadLlcGeometry)
{
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.line_bytes = 100; // not a power of two
    EXPECT_TRUE(hasError(cfg.validate(), "llc.line_bytes"));

    cfg.llc.line_bytes = 16; // too small
    EXPECT_TRUE(hasError(cfg.validate(), "llc.line_bytes"));

    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 0;
    EXPECT_TRUE(hasError(cfg.validate(), "llc.ways"));

    // size < line * ways: zero sets.
    cfg.llc.ways = 8;
    cfg.llc.size_bytes = 1024;
    EXPECT_TRUE(hasError(cfg.validate(), "llc.size_bytes"));

    // Non-power-of-two set count.
    cfg.llc.size_bytes = 3 * 256 * 8;
    EXPECT_TRUE(hasError(cfg.validate(), "llc.size_bytes"));
}

TEST(MemConfig, RejectsPlruWithNonPowerOfTwoWays)
{
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.replacement = Replacement::PseudoLru;
    cfg.llc.ways = 6;
    cfg.llc.size_bytes = 6 * 256 * 16;
    EXPECT_TRUE(hasError(cfg.validate(), "llc.ways"));
}

TEST(MemConfig, RejectsPrefetcherWithoutLlc)
{
    MemoryHierarchyConfig cfg;
    cfg.prefetch.kind = PrefetchKind::NextLine;
    auto errors = cfg.validate();
    EXPECT_TRUE(hasError(errors, "prefetch.kind"));
    EXPECT_NE(formatMemConfigErrors(errors).find("llc"),
              std::string::npos);
}

TEST(MemConfig, RejectsDegenerateDcpt)
{
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.prefetch.kind = PrefetchKind::Dcpt;
    cfg.prefetch.degree = 0;
    cfg.prefetch.dcpt_entries = 0;
    cfg.prefetch.dcpt_deltas = 1;
    auto errors = cfg.validate();
    EXPECT_TRUE(hasError(errors, "prefetch.degree"));
    EXPECT_TRUE(hasError(errors, "prefetch.dcpt_entries"));
    EXPECT_TRUE(hasError(errors, "prefetch.dcpt_deltas"));
}

TEST(MemConfig, RejectsDegenerateWriteBuffer)
{
    MemoryHierarchyConfig cfg;
    cfg.write_buffer.enabled = true;
    cfg.write_buffer.entries = 0;
    cfg.write_buffer.entry_bytes = 32;
    auto errors = cfg.validate();
    EXPECT_TRUE(hasError(errors, "write_buffer.entries"));
    EXPECT_TRUE(hasError(errors, "write_buffer.entry_bytes"));
}

TEST(MemConfig, EnumNamesAreStable)
{
    EXPECT_STREQ(replacementName(Replacement::Lru), "lru");
    EXPECT_STREQ(replacementName(Replacement::PseudoLru), "pseudo_lru");
    EXPECT_STREQ(prefetchKindName(PrefetchKind::None), "none");
    EXPECT_STREQ(prefetchKindName(PrefetchKind::NextLine), "next_line");
    EXPECT_STREQ(prefetchKindName(PrefetchKind::Dcpt), "dcpt");
}

// ---------------------------------------------------------------------
// Scratchpad double-buffering
// ---------------------------------------------------------------------

ScratchpadConfig
spConfig(unsigned banks, ByteCount bank_bytes)
{
    ScratchpadConfig cfg;
    cfg.enabled = true;
    cfg.banks = banks;
    cfg.bank_bytes = bank_bytes;
    return cfg;
}

TEST(Scratchpad, GrantsOnlyCompletedBanks)
{
    Scratchpad sp(spConfig(2, 1024));
    EXPECT_EQ(sp.capacity(), 2048u);
    EXPECT_EQ(sp.fillHeadroom(), 2048u);

    EXPECT_EQ(sp.fillArrived(512), 0u); // half a bank: nothing staged
    EXPECT_EQ(sp.consumable(), 0u);
    EXPECT_EQ(sp.held(), 512u);

    EXPECT_EQ(sp.fillArrived(512), 1024u); // bank 0 completes
    EXPECT_EQ(sp.consumable(), 1024u);
    EXPECT_EQ(sp.held(), 0u);

    EXPECT_EQ(sp.fillArrived(1024), 1024u); // bank 1 completes
    EXPECT_EQ(sp.fillHeadroom(), 0u);       // both banks live
    EXPECT_EQ(sp.occupancy(), sp.capacity());
}

TEST(Scratchpad, DrainReopensBanksAtBankGranularity)
{
    Scratchpad sp(spConfig(2, 1024));
    sp.fillArrived(2048);
    ASSERT_EQ(sp.consumable(), 2048u);

    sp.drained(512); // half of bank 0: still not refillable
    EXPECT_EQ(sp.fillHeadroom(), 0u);
    sp.drained(512); // bank 0 fully drained
    EXPECT_EQ(sp.fillHeadroom(), 1024u);
    sp.drained(1024);
    EXPECT_EQ(sp.fillHeadroom(), 2048u);
    EXPECT_EQ(sp.bytesDrained(), 2048u);
    EXPECT_EQ(sp.bytesFilled(), 2048u);
}

TEST(Scratchpad, PingPongNeverOverlapsFillAndDrainBank)
{
    // Property fuzz: a random interleave of legal fills and drains.
    // The double-buffering invariant: whenever a fill and a drain are
    // both mid-bank, they target distinct physical banks.
    for (unsigned banks : {2u, 3u, 4u}) {
        Rng rng(901 + banks);
        Scratchpad sp(spConfig(banks, 1024));
        for (int step = 0; step < 5000; ++step) {
            bool can_fill = sp.fillHeadroom() > 0;
            bool can_drain = sp.consumable() > 0;
            ASSERT_TRUE(can_fill || can_drain); // never deadlocked
            bool fill = can_fill &&
                        (!can_drain || rng.uniform() < 0.5);
            if (fill) {
                ByteCount n = rng.uniformInt(1, sp.fillHeadroom());
                sp.fillArrived(n);
            } else {
                ByteCount n = rng.uniformInt(1, sp.consumable());
                sp.drained(n);
            }
            if (sp.fillActive() && sp.drainActive())
                ASSERT_NE(sp.fillBank(), sp.drainBank());
            ASSERT_LE(sp.occupancy(), sp.capacity());
            ASSERT_LE(sp.bytesDrained(), sp.bytesFilled());
        }
        EXPECT_GT(sp.bankSwitches(), 0u);
    }
}

TEST(Scratchpad, RollbackDropsContentsKeepsRunTotals)
{
    Scratchpad sp(spConfig(2, 1024));
    sp.fillArrived(1536);
    sp.drained(512);
    sp.noteFillStall();
    auto filled_before = sp.bytesFilled();
    auto fills_before = sp.fills();

    sp.rollback();
    EXPECT_EQ(sp.occupancy(), 0u);
    EXPECT_EQ(sp.consumable(), 0u);
    EXPECT_EQ(sp.fillHeadroom(), sp.capacity());
    EXPECT_EQ(sp.bytesFilled(), filled_before);
    EXPECT_EQ(sp.fills(), fills_before);
    EXPECT_EQ(sp.fillStalls(), 1u);

    // Usable again after rollback.
    EXPECT_EQ(sp.fillArrived(1024), 1024u);
}

TEST(Scratchpad, TracksOccupancyHighWater)
{
    Scratchpad sp(spConfig(2, 1024));
    sp.fillArrived(1500);
    sp.drained(1024);
    sp.fillArrived(200);
    EXPECT_EQ(sp.occupancyHighWater(), 1500u);
    EXPECT_EQ(sp.drains(), 1u);
}

// ---------------------------------------------------------------------
// LLC replacement lemmas vs a reference model
// ---------------------------------------------------------------------

LlcConfig
llcConfig(ByteCount size, ByteCount line, unsigned ways, Replacement rep)
{
    LlcConfig cfg;
    cfg.enabled = true;
    cfg.size_bytes = size;
    cfg.line_bytes = line;
    cfg.ways = ways;
    cfg.replacement = rep;
    return cfg;
}

/** Reference LRU cache: per-set recency list, exact semantics. */
class RefLru
{
  public:
    RefLru(std::uint64_t sets, unsigned ways) : sets_(sets), ways_(ways),
                                                lists_(sets)
    {
    }

    bool
    access(Addr line)
    {
        auto &l = lists_[line & (sets_ - 1)];
        auto it = std::find(l.begin(), l.end(), line);
        if (it != l.end()) {
            l.erase(it);
            l.push_front(line);
            return true;
        }
        if (l.size() >= ways_)
            l.pop_back();
        l.push_front(line);
        return false;
    }

  private:
    std::uint64_t sets_;
    unsigned ways_;
    std::vector<std::list<Addr>> lists_;
};

TEST(Llc, LruMatchesReferenceModelOnRandomStream)
{
    // 16 KiB / 256 B lines / 4 ways = 16 sets.
    Llc llc(llcConfig(units::KiB(16), 256, 4, Replacement::Lru));
    RefLru ref(16, 4);
    Rng rng(4242);
    std::uint64_t hits = 0;
    for (int i = 0; i < 20000; ++i) {
        // Skewed towards a hot region so hits and evictions both occur.
        Addr line = rng.uniform() < 0.5 ? rng.uniformInt(0, 63)
                                        : rng.uniformInt(0, 4095);
        bool hit = llc.access(line);
        ASSERT_EQ(hit, ref.access(line)) << "access " << i;
        hits += hit ? 1 : 0;
    }
    EXPECT_EQ(llc.hits(), hits);
    EXPECT_EQ(llc.hits() + llc.misses(), llc.accesses());
    EXPECT_EQ(llc.accesses(), 20000u);
    EXPECT_GT(llc.evictions(), 0u);
}

TEST(Llc, WorkingSetWithinAssociativityAlwaysHitsAfterWarmup)
{
    // Cycling over exactly `ways` lines of one set never misses after
    // the first touch -- under LRU and under tree-PLRU.
    for (auto rep : {Replacement::Lru, Replacement::PseudoLru}) {
        Llc llc(llcConfig(units::KiB(16), 256, 4, rep));
        // 16 sets: lines k*16 all map to set 0.
        for (int pass = 0; pass < 8; ++pass) {
            for (Addr k = 0; k < 4; ++k) {
                bool hit = llc.access(k * 16);
                EXPECT_EQ(hit, pass > 0);
            }
        }
        EXPECT_EQ(llc.misses(), 4u);
        EXPECT_EQ(llc.evictions(), 0u);
    }
}

TEST(Llc, PlruVictimIsNeverTheMostRecentlyTouchedWay)
{
    // One-set cache, 8 ways, tree-PLRU: fill the set, then repeatedly
    // touch a random resident line and insert a fresh one. The fresh
    // line must never evict the line touched immediately before.
    Llc llc(llcConfig(8 * 256, 256, 8, Replacement::PseudoLru));
    std::vector<Addr> resident;
    for (Addr l = 0; l < 8; ++l) {
        llc.access(l);
        resident.push_back(l);
    }
    Rng rng(7);
    Addr next_fresh = 8;
    for (int i = 0; i < 2000; ++i) {
        Addr touched = resident[rng.uniformInt(0, resident.size() - 1)];
        ASSERT_TRUE(llc.access(touched));
        Addr fresh = next_fresh++;
        ASSERT_FALSE(llc.access(fresh));
        // Exactly one resident line was evicted; find it.
        std::size_t evicted = resident.size();
        for (std::size_t r = 0; r < resident.size(); ++r) {
            if (!llc.contains(resident[r])) {
                ASSERT_EQ(evicted, resident.size())
                    << "more than one line evicted";
                evicted = r;
            }
        }
        ASSERT_NE(evicted, resident.size());
        EXPECT_NE(resident[evicted], touched)
            << "PLRU evicted the most recently touched way";
        resident[evicted] = fresh;
    }
    EXPECT_EQ(llc.hits() + llc.misses(), llc.accesses());
}

TEST(Llc, StreamingSweepLargerThanCacheMissesEverywhere)
{
    Llc llc(llcConfig(units::KiB(16), 256, 4, Replacement::Lru));
    // 64 lines fit; sweep 1024 distinct lines twice. With true LRU and
    // a sweep 16x the capacity, the second pass misses everywhere too.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr l = 0; l < 1024; ++l)
            EXPECT_FALSE(llc.access(l));
    EXPECT_EQ(llc.hits(), 0u);
    EXPECT_EQ(llc.misses(), 2048u);
}

TEST(Llc, PrefetchedLinesTrackUsefulAndUnused)
{
    Llc llc(llcConfig(8 * 256, 256, 8, Replacement::Lru));
    EXPECT_TRUE(llc.fillPrefetch(1));
    EXPECT_FALSE(llc.fillPrefetch(1)); // already resident: no-op
    EXPECT_TRUE(llc.contains(1));

    // Demand touch converts the line to useful exactly once.
    EXPECT_TRUE(llc.access(1));
    EXPECT_EQ(llc.prefetchUseful(), 1u);
    llc.access(1);
    EXPECT_EQ(llc.prefetchUseful(), 1u);

    // An untouched prefetched line evicted counts as unused.
    EXPECT_TRUE(llc.fillPrefetch(100));
    for (Addr l = 2; l < 10; ++l)
        llc.access(l); // evicts line 100 (and line 1) from the set
    EXPECT_EQ(llc.prefetchUnused(), 1u);
}

// ---------------------------------------------------------------------
// Write-combining buffer conservation
// ---------------------------------------------------------------------

WriteBufferConfig
wbConfig(unsigned entries, ByteCount entry_bytes)
{
    WriteBufferConfig cfg;
    cfg.enabled = true;
    cfg.entries = entries;
    cfg.entry_bytes = entry_bytes;
    return cfg;
}

TEST(WriteBuffer, CombinesStoresIntoOneBurst)
{
    WriteCombiningBuffer wb(wbConfig(4, 1024));
    // Three partial stores to the same region: parked, no burst yet.
    EXPECT_TRUE(wb.push(0, 256).empty());
    EXPECT_TRUE(wb.push(256, 256).empty());
    EXPECT_TRUE(wb.push(512, 256).empty());
    EXPECT_EQ(wb.occupancy(), 768u);
    EXPECT_EQ(wb.combines(), 2u);

    // The fourth store completes the entry: one full burst drains.
    auto bursts = wb.push(768, 256);
    ASSERT_EQ(bursts.size(), 1u);
    EXPECT_EQ(bursts[0].base, 0u);
    EXPECT_EQ(bursts[0].bytes, 1024u);
    EXPECT_EQ(wb.occupancy(), 0u);
    EXPECT_EQ(wb.drains(), 1u);
}

TEST(WriteBuffer, FifoSpillsOldestEntryWhenFull)
{
    WriteCombiningBuffer wb(wbConfig(2, 1024));
    wb.push(0 * 1024, 100);
    wb.push(5 * 1024, 100);
    // A third distinct region forces the oldest (region 0) out.
    auto bursts = wb.push(9 * 1024, 100);
    ASSERT_EQ(bursts.size(), 1u);
    EXPECT_EQ(bursts[0].base, 0u);
    EXPECT_EQ(bursts[0].bytes, 100u);
    EXPECT_EQ(wb.openEntries(), 2u);
}

TEST(WriteBuffer, SpanningStoreSplitsAtRegionBoundaries)
{
    WriteCombiningBuffer wb(wbConfig(8, 1024));
    // 2.5 regions starting mid-region: full regions drain immediately.
    auto bursts = wb.push(512, 2560);
    // [512,1024) parks; [1024,2048) full burst; [2048,3072) full burst.
    EXPECT_EQ(bursts.size(), 2u);
    EXPECT_EQ(wb.occupancy(), 512u);
    auto rest = wb.flush();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].bytes, 512u);
    EXPECT_EQ(wb.bytesIn(), wb.bytesDrained());
}

TEST(WriteBuffer, ConservationHoldsUnderRandomStores)
{
    // Property fuzz: bytes in == bytes drained + occupancy, always;
    // after flush the two totals are equal exactly.
    Rng rng(1717);
    WriteCombiningBuffer wb(wbConfig(4, 4096));
    ByteCount pushed = 0;
    for (int i = 0; i < 10000; ++i) {
        Addr addr = rng.uniformInt(0, 1 << 20);
        ByteCount bytes = rng.uniformInt(1, 8192);
        wb.push(addr, bytes);
        pushed += bytes;
        ASSERT_EQ(wb.bytesIn(), pushed);
        ASSERT_EQ(wb.bytesIn(), wb.bytesDrained() + wb.occupancy());
        ASSERT_LE(wb.openEntries(), 4u);
    }
    wb.flush();
    EXPECT_EQ(wb.occupancy(), 0u);
    EXPECT_EQ(wb.bytesIn(), wb.bytesDrained());
    EXPECT_GT(wb.combines(), 0u);
    EXPECT_EQ(wb.writes(), 10000u);
}

// ---------------------------------------------------------------------
// Prefetch policies
// ---------------------------------------------------------------------

PrefetchConfig
pfConfig(PrefetchKind kind, unsigned degree = 2)
{
    PrefetchConfig cfg;
    cfg.kind = kind;
    cfg.degree = degree;
    return cfg;
}

TEST(Prefetch, NonePolicyNeverPredicts)
{
    auto p = makePrefetchPolicy(pfConfig(PrefetchKind::None));
    EXPECT_STREQ(p->name(), "none");
    std::vector<Addr> out;
    for (Addr l = 0; l < 100; ++l)
        p->onAccess(l, false, out);
    EXPECT_TRUE(out.empty());
}

TEST(Prefetch, NextLinePredictsOnMissesOnly)
{
    auto p = makePrefetchPolicy(pfConfig(PrefetchKind::NextLine, 3));
    EXPECT_STREQ(p->name(), "next_line");
    std::vector<Addr> out;
    p->onAccess(10, /*hit=*/true, out);
    EXPECT_TRUE(out.empty());
    p->onAccess(10, /*hit=*/false, out);
    EXPECT_EQ(out, (std::vector<Addr>{11, 12, 13}));
}

TEST(Prefetch, DcptLearnsAPureStride)
{
    DcptPrefetcher dcpt(pfConfig(PrefetchKind::Dcpt, 2));
    std::vector<Addr> out;
    // Stride 3: 0, 3, 6, 9 -- three deltas recorded at 9; the matched
    // pair replays the stride forward.
    dcpt.onAccess(0, false, out);
    dcpt.onAccess(3, false, out);
    dcpt.onAccess(6, false, out);
    EXPECT_TRUE(out.empty()); // needs 3 deltas to correlate
    dcpt.onAccess(9, false, out);
    EXPECT_EQ(out, (std::vector<Addr>{12, 15}));
}

TEST(Prefetch, DcptReplaysAPeriodicDeltaPattern)
{
    PrefetchConfig cfg = pfConfig(PrefetchKind::Dcpt, 3);
    cfg.dcpt_deltas = 8;
    DcptPrefetcher dcpt(cfg);
    std::vector<Addr> out;
    // Deltas alternate +1, +4: 0, 1, 5, 6, 10, 11, ...
    for (Addr a : {0u, 1u, 5u, 6u, 10u})
        dcpt.onAccess(a, false, out);
    out.clear();
    dcpt.onAccess(11, false, out);
    // After ...,+4(->10),+1(->11) the pattern continues +4, +1, +4.
    EXPECT_EQ(out, (std::vector<Addr>{15, 16, 20}));
}

TEST(Prefetch, DcptIgnoresRepeatedSameLineAccesses)
{
    DcptPrefetcher dcpt(pfConfig(PrefetchKind::Dcpt, 2));
    std::vector<Addr> out;
    for (int i = 0; i < 10; ++i)
        dcpt.onAccess(42, false, out);
    EXPECT_TRUE(out.empty());
    // The zero-delta stream must not have corrupted the history:
    // a stride stream afterwards still learns.
    dcpt.onAccess(45, false, out);
    dcpt.onAccess(48, false, out);
    dcpt.onAccess(51, false, out);
    EXPECT_FALSE(out.empty());
}

TEST(Prefetch, DcptTableIsBoundedAndRecyclesLru)
{
    PrefetchConfig cfg = pfConfig(PrefetchKind::Dcpt, 2);
    cfg.dcpt_entries = 4;
    DcptPrefetcher dcpt(cfg);
    std::vector<Addr> out;
    // Touch 16 distinct regions (region = line >> 6).
    for (Addr r = 0; r < 16; ++r)
        dcpt.onAccess(r << 6, false, out);
    EXPECT_LE(dcpt.liveEntries(), 4u);
    EXPECT_EQ(dcpt.liveEntries(), 4u);
}

TEST(Prefetch, DcptSeparateRegionsLearnIndependently)
{
    PrefetchConfig cfg = pfConfig(PrefetchKind::Dcpt, 1);
    cfg.dcpt_entries = 8;
    DcptPrefetcher dcpt(cfg);
    std::vector<Addr> out;
    // Interleave two strided streams in different regions.
    Addr a = 0, b = 1 << 10;
    for (int i = 0; i < 4; ++i) {
        dcpt.onAccess(a, false, out);
        dcpt.onAccess(b, false, out);
        a += 2;
        b += 5;
    }
    // Both streams had >= 3 deltas; each predicted its own stride.
    EXPECT_FALSE(out.empty());
    for (Addr p : out) {
        bool in_a = p < (1 << 10);
        EXPECT_EQ((p - (in_a ? 0 : (1 << 10))) %
                      (in_a ? 2 : 5),
                  0u);
    }
}

// ---------------------------------------------------------------------
// MemoryHierarchy facade
// ---------------------------------------------------------------------

dram::PriorityLink
testLink()
{
    dram::PriorityLink::Config cfg;
    cfg.bandwidth_bytes_per_s = 1e11;
    cfg.latency_s = 100e-9;
    return dram::PriorityLink(cfg, units::MHz(100));
}

TEST(MemoryHierarchy, PassthroughForwardsVerbatim)
{
    auto direct = testLink();
    auto fronted = testLink();
    MemoryHierarchyConfig cfg;
    MemoryHierarchy mh(cfg, &fronted);
    ASSERT_TRUE(mh.passthrough());

    Rng rng(33);
    Tick now = 0;
    for (int i = 0; i < 500; ++i) {
        now += rng.uniformInt(0, 50);
        ByteCount bytes = rng.uniformInt(1, 65536);
        auto prio = rng.uniform() < 0.3 ? dram::Priority::High
                                        : dram::Priority::Low;
        Tick want = direct.transfer(now, bytes, prio, nullptr);
        Tick got = rng.uniform() < 0.5
                       ? mh.read(now, i * 1000, bytes, prio, nullptr)
                       : mh.write(now, i * 1000, bytes, prio, nullptr);
        ASSERT_EQ(got, want) << "transfer " << i;
    }
    EXPECT_EQ(direct.bytesMoved(dram::Priority::Low),
              fronted.bytesMoved(dram::Priority::Low));
    EXPECT_EQ(direct.bytesMoved(dram::Priority::High),
              fronted.bytesMoved(dram::Priority::High));

    // Passthrough reports inactive, all-zero stats.
    auto s = mh.stats();
    EXPECT_FALSE(s.active);
    EXPECT_EQ(s.reads, 0u);
    EXPECT_EQ(s.dram_transfers, 0u);
}

TEST(MemoryHierarchy, LlcHitsSkipTheDramLink)
{
    auto link = testLink();
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.size_bytes = units::KiB(64);
    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 4;
    MemoryHierarchy mh(cfg, &link);

    // Cold read: misses, one coalesced transfer for the whole span.
    Tick t1 = mh.read(0, 0, 4096, dram::Priority::Low, nullptr);
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(mh.stats().llc_misses, 16u);
    EXPECT_EQ(mh.stats().dram_transfers, 1u);
    ByteCount moved = link.bytesMoved(dram::Priority::Low);
    EXPECT_EQ(moved, 4096u);

    // Warm re-read: all hits, no link traffic, hit-latency completion.
    Tick t2 = mh.read(1000, 0, 4096, dram::Priority::Low, nullptr);
    EXPECT_EQ(t2, 1000 + cfg.llc.hit_latency_cycles);
    EXPECT_EQ(mh.stats().llc_hits, 16u);
    EXPECT_EQ(link.bytesMoved(dram::Priority::Low), moved);

    // hit + miss == accesses, and the stats snapshot is active.
    auto s = mh.stats();
    EXPECT_TRUE(s.active);
    EXPECT_EQ(s.llc_hits + s.llc_misses, 32u);
    EXPECT_EQ(s.reads, 2u);
    EXPECT_EQ(s.read_bytes, 8192u);
}

TEST(MemoryHierarchy, InterleavedHitsSplitTheMissRuns)
{
    auto link = testLink();
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.size_bytes = units::KiB(64);
    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 4;
    MemoryHierarchy mh(cfg, &link);

    // Warm lines 1 and 3 of a 5-line span; the cold span then needs
    // three separate transfers (line 0, line 2, line 4).
    mh.read(0, 1 * 256, 256, dram::Priority::Low, nullptr);
    mh.read(0, 3 * 256, 256, dram::Priority::Low, nullptr);
    auto before = mh.stats().dram_transfers;
    mh.read(100, 0, 5 * 256, dram::Priority::Low, nullptr);
    EXPECT_EQ(mh.stats().dram_transfers - before, 3u);
}

TEST(MemoryHierarchy, NextLinePrefetchTurnsStreamingIntoHits)
{
    auto link = testLink();
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.size_bytes = units::KiB(64);
    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 4;
    cfg.prefetch.kind = PrefetchKind::NextLine;
    cfg.prefetch.degree = 4;
    MemoryHierarchy mh(cfg, &link);

    // Sequential line-sized reads: after the first miss, the
    // prefetcher stays ahead of the demand stream.
    for (Addr l = 0; l < 64; ++l)
        mh.read(l * 10, l * 256, 256, dram::Priority::Low, nullptr);
    auto s = mh.stats();
    EXPECT_GT(s.prefetch_issued, 0u);
    EXPECT_GT(s.prefetch_useful, 0u);
    EXPECT_GT(s.llc_hits, s.llc_misses);
    EXPECT_LE(s.prefetch_useful, s.prefetch_issued);
}

TEST(MemoryHierarchy, WriteBufferDrainsThroughTheLink)
{
    auto link = testLink();
    MemoryHierarchyConfig cfg;
    cfg.write_buffer.enabled = true;
    cfg.write_buffer.entries = 4;
    cfg.write_buffer.entry_bytes = 4096;
    MemoryHierarchy mh(cfg, &link);

    // Parked store: no link traffic, completion is immediate.
    Tick t = mh.write(5, 0, 1024, dram::Priority::Low, nullptr);
    EXPECT_EQ(t, 5u);
    EXPECT_EQ(link.bytesMoved(dram::Priority::Low), 0u);

    // Fill the region: the burst drains through the link.
    mh.write(6, 1024, 3072, dram::Priority::Low, nullptr);
    EXPECT_EQ(link.bytesMoved(dram::Priority::Low), 4096u);

    // flushWrites() drains the stragglers.
    mh.write(7, units::MiB(1), 100, dram::Priority::Low, nullptr);
    Tick done = mh.flushWrites(8);
    EXPECT_GT(done, 8u);
    auto s = mh.stats();
    EXPECT_EQ(s.wb_bytes_in, s.wb_bytes_drained);
    EXPECT_EQ(s.wb_occupancy, 0u);
    EXPECT_EQ(link.bytesMoved(dram::Priority::Low), 4196u);
}

TEST(MemoryHierarchy, ScratchpadSeamStagesAndRollsBack)
{
    auto link = testLink();
    MemoryHierarchyConfig cfg;
    cfg.scratchpad.enabled = true;
    cfg.scratchpad.banks = 2;
    cfg.scratchpad.bank_bytes = 1024;
    MemoryHierarchy mh(cfg, &link);
    ASSERT_TRUE(mh.hasScratchpad());
    EXPECT_EQ(mh.scratchpadCapacity(), 2048u);
    EXPECT_EQ(mh.scratchpadFillHeadroom(), 2048u);

    EXPECT_EQ(mh.noteScratchpadFill(1024), 1024u);
    // Fractional drains accumulate in the carry until whole bytes.
    mh.noteScratchpadDrain(0.25);
    mh.noteScratchpadDrain(0.25);
    EXPECT_EQ(mh.scratchpad()->bytesDrained(), 0u);
    mh.noteScratchpadDrain(0.75);
    EXPECT_EQ(mh.scratchpad()->bytesDrained(), 1u);

    mh.noteScratchpadFillStall();
    mh.rollbackScratchpad();
    EXPECT_EQ(mh.scratchpadFillHeadroom(), 2048u);
    auto s = mh.stats();
    EXPECT_EQ(s.sp_fill_stalls, 1u);
    EXPECT_EQ(s.sp_bytes_filled, 1024u);
    EXPECT_EQ(s.sp_high_water, 1024u);
}

TEST(MemoryHierarchy, FaultReportsFoldAcrossMissRuns)
{
    // A hook that poisons one specific transfer: the fold must keep
    // the poisoned run visible even when later runs are clean.
    class OneShotHook : public dram::LinkFaultHook
    {
      public:
        dram::TransferFault
        onTransfer(Tick, ByteCount, dram::Priority) override
        {
            dram::TransferFault f;
            if (++calls_ == 1) {
                f.uncorrectable = true;
                f.extra_cycles = 7;
            }
            return f;
        }
        int calls_ = 0;
    };

    auto link = testLink();
    OneShotHook hook;
    link.setFaultHook(&hook);
    MemoryHierarchyConfig cfg;
    cfg.llc.enabled = true;
    cfg.llc.size_bytes = units::KiB(64);
    cfg.llc.line_bytes = 256;
    cfg.llc.ways = 4;
    MemoryHierarchy mh(cfg, &link);

    // Warm line 1 so a cold 3-line read splits into two miss runs.
    // The warming transfer spends the hook's poisoned call.
    mh.read(0, 256, 256, dram::Priority::Low, nullptr);
    ASSERT_EQ(hook.calls_, 1);

    hook.calls_ = 0; // re-arm: poison the FIRST of the two miss runs
    dram::TransferFault f;
    mh.read(10, 0, 3 * 256, dram::Priority::Low, &f);
    EXPECT_EQ(hook.calls_, 2); // [line 0] then [line 2], line 1 hit
    EXPECT_TRUE(f.uncorrectable);
    EXPECT_EQ(f.extra_cycles, 7u);
}

} // namespace
} // namespace mem
} // namespace equinox

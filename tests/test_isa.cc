/**
 * @file
 * Unit tests for the ISA: opcode classification, instruction geometry
 * arithmetic, and TileWork aggregation.
 */

#include <gtest/gtest.h>

#include "isa/instruction.hh"
#include "isa/program.hh"

namespace equinox
{
namespace isa
{
namespace
{

TEST(Opcode, Classification)
{
    EXPECT_TRUE(isMmuOp(Opcode::MatMul));
    EXPECT_FALSE(isMmuOp(Opcode::VectorOp));
    EXPECT_TRUE(isSimdOp(Opcode::VectorOp));
    EXPECT_TRUE(isSimdOp(Opcode::VectorTrainOp));
    EXPECT_TRUE(isSimdOp(Opcode::Accumulate));
    EXPECT_TRUE(isDataMoveOp(Opcode::LoadDram));
    EXPECT_TRUE(isDataMoveOp(Opcode::Im2col));
    EXPECT_FALSE(isDataMoveOp(Opcode::MatMul));
    EXPECT_STREQ(opcodeName(Opcode::MatMul), "matmul");
    EXPECT_STREQ(opcodeName(Opcode::VectorTrainOp), "vtrain");
}

Instruction
makeMatMul(std::uint32_t rows_real, std::uint32_t rows_dummy,
           std::uint32_t rows_slots, std::uint32_t k_valid,
           std::uint32_t k_slots, std::uint32_t cols_valid,
           std::uint32_t cols_slots)
{
    Instruction inst;
    inst.op = Opcode::MatMul;
    inst.rows_real = rows_real;
    inst.rows_dummy = rows_dummy;
    inst.rows_slots = rows_slots;
    inst.k_valid = k_valid;
    inst.k_slots = k_slots;
    inst.cols_valid = cols_valid;
    inst.cols_slots = cols_slots;
    return inst;
}

TEST(Instruction, MacCounting)
{
    auto inst = makeMatMul(3, 1, 4, 8, 8, 6, 8);
    EXPECT_EQ(inst.realMacs(), 3u * 8 * 6);
    EXPECT_EQ(inst.dummyMacs(), 1u * 8 * 6);
    EXPECT_EQ(inst.totalAluSlots(), 4u * 8 * 8);
    EXPECT_EQ(inst.mmuOccupancy(), 4u);
}

TEST(TileWork, FullTileIsAllWorking)
{
    // 4x4x2-wide, m=2 arrays: macs/cycle = 2*16*2 = 64.
    std::vector<Instruction> insts{makeMatMul(4, 0, 4, 8, 8, 8, 8)};
    auto tw = makeTileWork(insts, 64, 0);
    EXPECT_EQ(tw.instructions, 1u);
    EXPECT_EQ(tw.occupancy, 4u); // 256 slots / 64 per cycle
    EXPECT_DOUBLE_EQ(tw.geom_frac, 1.0);
    EXPECT_EQ(tw.real_ops, 2u * 4 * 8 * 8);
}

TEST(TileWork, PartialTileGeometry)
{
    // Half the K dimension valid: geometry efficiency 0.5.
    std::vector<Instruction> insts{makeMatMul(4, 0, 4, 4, 8, 8, 8)};
    auto tw = makeTileWork(insts, 64, 0);
    EXPECT_DOUBLE_EQ(tw.geom_frac, 0.5);
    EXPECT_EQ(tw.real_ops, 2u * 4 * 4 * 8);
}

TEST(TileWork, AggregatesAcrossInstructions)
{
    std::vector<Instruction> insts{makeMatMul(4, 0, 4, 8, 8, 8, 8),
                                   makeMatMul(4, 0, 4, 4, 8, 8, 8)};
    auto tw = makeTileWork(insts, 64, 123);
    EXPECT_EQ(tw.instructions, 2u);
    EXPECT_EQ(tw.occupancy, 8u);
    EXPECT_DOUBLE_EQ(tw.geom_frac, 0.75);
    EXPECT_EQ(tw.stream_bytes, 123u);
}

TEST(TileWork, DummyRowsCountInGeometry)
{
    // Dummy rows occupy valid geometry; the simulator splits them from
    // working at run time via the real-request fraction.
    std::vector<Instruction> insts{makeMatMul(2, 2, 4, 8, 8, 8, 8)};
    auto tw = makeTileWork(insts, 64, 0);
    EXPECT_DOUBLE_EQ(tw.geom_frac, 1.0);
    EXPECT_EQ(tw.real_ops, 2u * 4 * 8 * 8); // all data rows
}

TEST(TileWork, OccupancyRoundsUp)
{
    // 255 valid of 256 slots at 64/cycle still takes 4 cycles.
    std::vector<Instruction> insts{makeMatMul(4, 0, 4, 8, 8, 8, 8)};
    auto tw = makeTileWork(insts, 63, 0);
    EXPECT_EQ(tw.occupancy, (4u * 8 * 8 + 62) / 63);
}

TEST(CompiledProgram, Accounting)
{
    CompiledProgram prog;
    prog.batch_rows = 4;
    for (int i = 0; i < 3; ++i) {
        StepBlock sb;
        std::vector<Instruction> insts{makeMatMul(4, 0, 4, 8, 8, 8, 8)};
        sb.mmu = makeTileWork(insts, 64, 100);
        sb.simd_cycles = 2;
        sb.drain_cycles = 8;
        prog.steps.push_back(sb);
    }
    EXPECT_EQ(prog.mmuBusyCycles(), 12u);
    EXPECT_EQ(prog.serviceCycles(), 12u + 3 * (2 + 8));
    EXPECT_EQ(prog.totalRealOps(), 3u * 2 * 4 * 8 * 8);
    EXPECT_DOUBLE_EQ(prog.opsPerRequest(),
                     static_cast<double>(3 * 2 * 4 * 8 * 8) / 4.0);
    EXPECT_EQ(prog.totalStreamBytes(), 300u);
    EXPECT_EQ(prog.totalInstructions(), 3u);
}

} // namespace
} // namespace isa
} // namespace equinox

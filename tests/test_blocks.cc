/**
 * @file
 * Tests for the block/port simulation architecture: per-block stat
 * registration, the TraceSink observability seam (including its
 * must-not-perturb guarantee), and the Figure 8 cycle breakdown being
 * produced by the Datapath block itself.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/units.hh"
#include "sim/accelerator.hh"
#include "sim/blocks/trace.hh"
#include "stats/registry.hh"
#include "workload/compiler.hh"
#include "workload/dnn_model.hh"

namespace equinox
{
namespace sim
{
namespace
{

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg;
    cfg.name = "blocks-test";
    cfg.n = 8;
    cfg.m = 2;
    cfg.w = 2;
    cfg.frequency_hz = units::MHz(100);
    cfg.simd_lanes = 256;
    return cfg;
}

workload::DnnModel
tinyRnn()
{
    workload::DnnModel model;
    model.name = "tiny";
    model.kind = workload::DnnModel::Kind::Rnn;
    model.rnn.hidden = 64;
    model.rnn.steps = 4;
    model.rnn.gate_groups = {2};
    model.rnn.simd_passes = 4.0;
    return model;
}

RunSpec
smallSpec()
{
    RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 300;
    spec.seed = 17;
    return spec;
}

/** Build the shared mixed inference+training accelerator. */
std::unique_ptr<Accelerator>
makeAccel(AcceleratorConfig cfg)
{
    workload::Compiler compiler(cfg);
    auto accel = std::make_unique<Accelerator>(cfg);
    accel->installInference(compiler.compileInference(tinyRnn()));
    accel->installTraining(compiler.compileTraining(tinyRnn(), 16));
    return accel;
}

TEST(BlockStats, EveryBlockRegistersNamespacedCounters)
{
    auto accel = makeAccel(smallConfig());
    stats::StatRegistry reg;
    accel->registerStats(reg);

    // One representative stat per block, under "<block>.<stat>".
    EXPECT_TRUE(reg.contains("request_dispatcher.requests_admitted"));
    EXPECT_TRUE(reg.contains("instruction_dispatcher.rounds"));
    EXPECT_TRUE(reg.contains("datapath.mmu_busy_cycles"));
    EXPECT_TRUE(reg.contains("train_prefetcher.prefetch_bytes"));
    EXPECT_TRUE(reg.contains("fault_unit.faults_total"));
}

TEST(BlockStats, Figure8BreakdownComesFromTheDatapathBlock)
{
    auto accel = makeAccel(smallConfig());
    stats::StatRegistry reg;
    accel->registerStats(reg);

    auto spec = smallSpec();
    spec.arrival_rate_per_s = 0.4 * accel->maxRequestRate();
    auto res = accel->run(spec);

    // The SimResult's Figure 8 breakdown is exactly the Datapath
    // block's registered gauges -- the top level only copies it out.
    EXPECT_DOUBLE_EQ(reg.value("datapath.cycles_working"),
                     res.mmu_breakdown.get(stats::CycleClass::Working));
    EXPECT_DOUBLE_EQ(reg.value("datapath.cycles_dummy"),
                     res.mmu_breakdown.get(stats::CycleClass::Dummy));
    EXPECT_DOUBLE_EQ(reg.value("datapath.cycles_idle"),
                     res.mmu_breakdown.get(stats::CycleClass::Idle));
    EXPECT_DOUBLE_EQ(reg.value("datapath.cycles_other"),
                     res.mmu_breakdown.get(stats::CycleClass::Other));
    EXPECT_GT(reg.value("datapath.cycles_working"), 0.0);
    EXPECT_DOUBLE_EQ(reg.value("datapath.mmu_busy_cycles"),
                     res.mmu_busy_cycles);

    // Front-end tallies flow the same way.
    EXPECT_DOUBLE_EQ(reg.value("request_dispatcher.batches_formed"),
                     static_cast<double>(res.batches_formed));
    EXPECT_GT(reg.value("instruction_dispatcher.rounds"), 0.0);
    EXPECT_GT(reg.value("train_prefetcher.prefetch_bytes"), 0.0);
}

TEST(TraceSeam, BlocksEmitMultipleEventTypesThroughTheSink)
{
    auto accel = makeAccel(smallConfig());
    VectorTraceSink sink;
    accel->setTraceSink(&sink);

    auto spec = smallSpec();
    spec.arrival_rate_per_s = 0.4 * accel->maxRequestRate();
    accel->run(spec);

    // The acceptance bar is >= 3 distinct block event types; a mixed
    // run exercises far more. Count the distinct types seen.
    std::set<TraceEventType> seen;
    for (const auto &ev : sink.events())
        seen.insert(ev.type);
    EXPECT_GE(seen.size(), 3u);
    EXPECT_GT(sink.count(TraceEventType::RequestArrival), 0u);
    EXPECT_GT(sink.count(TraceEventType::BatchFormed), 0u);
    EXPECT_GT(sink.count(TraceEventType::InferenceChunkIssue), 0u);
    EXPECT_GT(sink.count(TraceEventType::BatchRetired), 0u);
    EXPECT_GT(sink.count(TraceEventType::TrainChunkIssue), 0u);
    EXPECT_GT(sink.count(TraceEventType::TrainIteration), 0u);
    EXPECT_GT(sink.count(TraceEventType::HostTransfer), 0u);

    // Events are recorded at dispatch time, so ticks never go backward
    // and every event names its emitting block.
    Tick last = 0;
    for (const auto &ev : sink.events()) {
        EXPECT_GE(ev.tick, last);
        last = ev.tick;
        EXPECT_STRNE(ev.block, "");
    }
}

TEST(TraceSeam, FaultEventsFlowThroughTheSink)
{
    auto accel = makeAccel(smallConfig());
    VectorTraceSink sink;
    accel->setTraceSink(&sink);

    auto spec = smallSpec();
    spec.arrival_rate_per_s = 0.4 * accel->maxRequestRate();
    spec.faults.seed = 23;
    spec.faults.host_drop_prob = 0.05;
    spec.faults.mmu_hang_rate_per_s = 200.0;
    auto res = accel->run(spec);

    ASSERT_GT(res.faults.mmu_hangs, 0u);
    EXPECT_EQ(sink.count(TraceEventType::FaultHang), res.faults.mmu_hangs);
    EXPECT_GT(sink.count(TraceEventType::FaultRecovery), 0u);
}

TEST(TraceSeam, TracingDoesNotPerturbResults)
{
    // Same config, same seed: a traced run must report byte-identical
    // results to an untraced one -- the seam is observation only.
    auto spec = smallSpec();

    auto plain = makeAccel(smallConfig());
    spec.arrival_rate_per_s = 0.4 * plain->maxRequestRate();
    auto base = plain->run(spec);

    auto traced = makeAccel(smallConfig());
    VectorTraceSink sink;
    traced->setTraceSink(&sink);
    auto obs = traced->run(spec);

    EXPECT_GT(sink.total(), 0u);
    EXPECT_EQ(base.completed_requests, obs.completed_requests);
    EXPECT_EQ(base.mean_latency_s, obs.mean_latency_s);
    EXPECT_EQ(base.p99_latency_s, obs.p99_latency_s);
    EXPECT_EQ(base.training_iterations, obs.training_iterations);
    EXPECT_EQ(base.host_bytes, obs.host_bytes);
    EXPECT_EQ(base.mmu_busy_cycles, obs.mmu_busy_cycles);
    EXPECT_EQ(base.mmu_breakdown.total(), obs.mmu_breakdown.total());
}

TEST(TraceSeam, VectorSinkBoundsMemoryAndCountsDrops)
{
    auto accel = makeAccel(smallConfig());
    VectorTraceSink sink(/*cap=*/64);
    accel->setTraceSink(&sink);

    auto spec = smallSpec();
    spec.arrival_rate_per_s = 0.4 * accel->maxRequestRate();
    accel->run(spec);

    EXPECT_LE(sink.events().size(), 64u);
    EXPECT_GT(sink.dropped(), 0u);
    EXPECT_EQ(sink.total(), sink.events().size() + sink.dropped());

    sink.clear();
    EXPECT_EQ(sink.total(), 0u);
    EXPECT_EQ(sink.count(TraceEventType::RequestArrival), 0u);
}

TEST(TraceSeam, EventTypeNamesAreStable)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::RequestArrival),
                 "request_arrival");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::BatchRetired),
                 "batch_retired");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::FaultRecovery),
                 "fault_recovery");
}

} // namespace
} // namespace sim
} // namespace equinox

/**
 * @file
 * Tests for the section-4 analytical models and the design-space
 * exploration, including the Table 1 reproduction bands.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hh"
#include "model/analytical.hh"
#include "model/cacti_lite.hh"
#include "model/dse.hh"
#include "model/tech_params.hh"

namespace equinox
{
namespace model
{
namespace
{

TEST(TechParams, VoltageFrequencyScaling)
{
    auto tp = defaultTechParams();
    EXPECT_DOUBLE_EQ(tp.voltageAt(tp.f_min), tp.v_min);
    EXPECT_DOUBLE_EQ(tp.voltageAt(tp.f_max), tp.v_max);
    // Energy scale is quadratic in voltage and 1.0 at the corner.
    EXPECT_DOUBLE_EQ(tp.energyScaleAt(tp.f_max), 1.0);
    EXPECT_NEAR(tp.energyScaleAt(tp.f_min),
                (0.6 * 0.6) / (0.9 * 0.9), 1e-12);
    // Clamped outside the range.
    EXPECT_DOUBLE_EQ(tp.voltageAt(1e3), tp.v_min);
    EXPECT_DOUBLE_EQ(tp.voltageAt(1e12), tp.v_max);
}

TEST(TechParams, EncodingDensityGap)
{
    auto tp = defaultTechParams();
    // bfloat16 ALUs are several times larger and hungrier (the paper's
    // "order of magnitude" silicon-density argument).
    EXPECT_GT(tp.e_alu_bf16 / tp.e_alu_hbfp8, 4.0);
    EXPECT_GT(tp.a_alu_bf16 / tp.a_alu_hbfp8, 3.0);
}

TEST(CactiLite, MonotoneInCapacity)
{
    CactiLite cacti;
    EXPECT_LT(cacti.areaMm2(1 << 20), cacti.areaMm2(50 << 20));
    EXPECT_LT(cacti.energyPerByte(1 << 20),
              cacti.energyPerByte(50 << 20));
    EXPECT_LT(cacti.leakageW(1 << 20), cacti.leakageW(50 << 20));
    // 28nm values are below the 32nm baselines.
    EXPECT_LT(cacti.areaMm2(1 << 20), 1.25 + 0.05);
}

TEST(AnalyticalModel, ThroughputIsEquation3)
{
    AnalyticalModel eq(defaultTechParams(), arith::Encoding::Hbfp8);
    EXPECT_DOUBLE_EQ(eq.throughput(143, 4, 4, 610e6),
                     2.0 * 4 * 143 * 143 * 4 * 610e6);
}

TEST(AnalyticalModel, AreaIsEquation1)
{
    auto tp = defaultTechParams();
    AnalyticalModel eq(tp, arith::Encoding::Hbfp8);
    double expect = 4.0 * 143 * 143 * 4 * tp.a_alu_hbfp8 +
                    tp.sramArea() + tp.a_dram;
    EXPECT_DOUBLE_EQ(eq.area(143, 4, 4), expect);
}

TEST(AnalyticalModel, PowerMonotoneInDimensionsAndFrequency)
{
    AnalyticalModel eq(defaultTechParams(), arith::Encoding::Hbfp8);
    EXPECT_LT(eq.power(16, 8, 8, 532e6), eq.power(16, 16, 8, 532e6));
    EXPECT_LT(eq.power(16, 8, 8, 532e6), eq.power(16, 8, 16, 532e6));
    EXPECT_LT(eq.power(16, 8, 8, 532e6), eq.power(16, 8, 8, 1200e6));
}

TEST(AnalyticalModel, MaxMIsTightAgainstEnvelopes)
{
    AnalyticalModel eq(defaultTechParams(), arith::Encoding::Hbfp8);
    for (unsigned n : {1u, 16u, 143u}) {
        for (double f : {532e6, 610e6, 1200e6}) {
            unsigned m = eq.maxM(n, 4, f);
            if (m == 0)
                continue;
            EXPECT_TRUE(eq.feasible(n, m, 4, f))
                << "n=" << n << " f=" << f;
            EXPECT_FALSE(eq.feasible(n, m + 1, 4, f))
                << "n=" << n << " f=" << f;
        }
    }
}

TEST(Dse, AllPointsFeasible)
{
    DseConfig cfg;
    cfg.n_values = {1, 8, 32, 128};
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Hbfp8, cfg);
    auto tp = defaultTechParams();
    EXPECT_FALSE(res.points.empty());
    for (const auto &p : res.points) {
        EXPECT_LE(p.area_mm2, tp.die_area * 1.0001);
        EXPECT_LE(p.power_w, tp.power_budget * 1.0001);
        EXPECT_GT(p.throughput_ops, 0.0);
        EXPECT_GT(p.service_time_s, 0.0);
    }
}

TEST(Dse, ParetoFrontierIsMonotone)
{
    DseConfig cfg;
    cfg.n_values = {1, 2, 4, 8, 16, 32, 64, 128, 192};
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Hbfp8, cfg);
    auto frontier = paretoFrontier(res);
    ASSERT_GE(frontier.size(), 3u);
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        EXPECT_GT(frontier[i].throughput_ops,
                  frontier[i - 1].throughput_ops);
        EXPECT_GT(frontier[i].service_time_s,
                  frontier[i - 1].service_time_s);
    }
}

TEST(Dse, ParetoPointsAreUndominated)
{
    DseConfig cfg;
    cfg.n_values = {1, 4, 16, 64, 143, 191};
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Hbfp8, cfg);
    paretoFrontier(res);
    for (const auto &p : res.points) {
        if (!p.pareto)
            continue;
        for (const auto &q : res.points) {
            bool dominates = q.throughput_ops >= p.throughput_ops &&
                             q.service_time_s < p.service_time_s;
            EXPECT_FALSE(dominates)
                << "pareto point n=" << p.n << " dominated by n=" << q.n;
        }
    }
}

/** Table 1 reproduction bands, hbfp8 side. */
TEST(Dse, Table1Hbfp8Bands)
{
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Hbfp8);
    auto mn = minLatencyDesign(res);
    auto c50 = bestUnderLatency(res, 50e-6);
    auto c500 = bestUnderLatency(res, 500e-6);
    auto none = bestUnderLatency(res, 1e9);
    ASSERT_TRUE(mn && c50 && c500 && none);

    // Paper: 60.2 / 333 / 390 / 400 TOp/s at 15.6 / 49.2 / 381 / 509 us.
    EXPECT_NEAR(mn->throughput_ops / 1e12, 60.2, 10.0);
    EXPECT_NEAR(mn->service_time_s * 1e6, 15.6, 4.0);
    EXPECT_EQ(mn->n, 1u);

    EXPECT_NEAR(c50->throughput_ops / 1e12, 333.0, 40.0);
    EXPECT_LE(c50->service_time_s, 50e-6);

    EXPECT_NEAR(c500->throughput_ops / 1e12, 390.0, 20.0);
    EXPECT_LE(c500->service_time_s, 500e-6);
    EXPECT_NEAR(static_cast<double>(c500->n), 143.0, 30.0);

    EXPECT_NEAR(none->throughput_ops / 1e12, 400.0, 10.0);

    // The headline ratios: ~5.5x at 50us, ~6.7x unconstrained.
    EXPECT_NEAR(c50->throughput_ops / mn->throughput_ops, 5.5, 1.0);
    EXPECT_NEAR(none->throughput_ops / mn->throughput_ops, 6.67, 0.8);
}

/** Table 1 reproduction bands, bfloat16 side. */
TEST(Dse, Table1Bfloat16Bands)
{
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Bfloat16);
    auto mn = minLatencyDesign(res);
    auto c500 = bestUnderLatency(res, 500e-6);
    ASSERT_TRUE(mn && c500);

    // Paper: 23.9 TOp/s at 37.3 us; 63.3 TOp/s under 500 us.
    EXPECT_NEAR(mn->throughput_ops / 1e12, 23.9, 4.0);
    EXPECT_NEAR(mn->service_time_s * 1e6, 37.3, 6.0);
    EXPECT_NEAR(c500->throughput_ops / 1e12, 63.3, 10.0);

    // bfloat16 cannot batch below 50us: the 50us optimum is the
    // latency-optimal design itself (the paper's merged rows).
    auto c50 = bestUnderLatency(res, 50e-6);
    ASSERT_TRUE(c50);
    EXPECT_EQ(c50->n, mn->n);

    // hbfp8 beats bfloat16 by ~5x+ under the same constraint.
    auto hb = exploreDesignSpace(defaultTechParams(),
                                 arith::Encoding::Hbfp8);
    auto hb500 = bestUnderLatency(hb, 500e-6);
    ASSERT_TRUE(hb500);
    EXPECT_GT(hb500->throughput_ops / c500->throughput_ops, 4.5);
}

TEST(Dse, OptimalDesignsFavourLowFrequencies)
{
    // Near-threshold operation: feasible high-throughput designs run at
    // the low end of the frequency range (section 4.2).
    auto res = exploreDesignSpace(defaultTechParams(),
                                  arith::Encoding::Hbfp8);
    auto none = bestUnderLatency(res, 1e9);
    ASSERT_TRUE(none);
    EXPECT_LE(none->frequency_hz, 800e6);
}

TEST(Dse, ToAcceleratorConfigCopiesGeometry)
{
    DesignPoint p;
    p.n = 14;
    p.m = 39;
    p.w = 37;
    p.frequency_hz = 532e6;
    p.encoding = arith::Encoding::Hbfp8;
    auto cfg = toAcceleratorConfig(p, "probe");
    EXPECT_EQ(cfg.n, 14u);
    EXPECT_EQ(cfg.m, 39u);
    EXPECT_EQ(cfg.w, 37u);
    EXPECT_EQ(cfg.name, "probe");
    EXPECT_DOUBLE_EQ(cfg.frequency_hz, 532e6);
}

} // namespace
} // namespace model
} // namespace equinox

/**
 * @file
 * Tests for the recurrent training substrate: BPTT correctness (loss
 * descent, single-batch overfit), dataset structure, and arithmetic
 * parity across engines.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "arith/gemm.hh"
#include "nn/datasets.hh"
#include "nn/loss.hh"
#include "nn/rnn.hh"
#include "nn/trainer.hh"

namespace equinox
{
namespace nn
{
namespace
{

TEST(ElmanRnn, ForwardShapes)
{
    Rng rng(1);
    ElmanRnn net(5, 7, 3, rng);
    arith::Fp32Gemm eng;
    Matrix x(4, 6 * 5);
    x.randomize(rng, 1.0);
    Matrix logits = net.forward(x, 6, eng);
    EXPECT_EQ(logits.rows(), 4u);
    EXPECT_EQ(logits.cols(), 3u);
    EXPECT_EQ(net.inDim(), 5u);
    EXPECT_EQ(net.hiddenDim(), 7u);
    EXPECT_EQ(net.classCount(), 3u);
}

TEST(ElmanRnn, GradientStepDecreasesLoss)
{
    Rng rng(3);
    ElmanRnn net(5, 7, 3, rng);
    arith::Fp32Gemm eng;
    Matrix x(2, 4 * 5);
    x.randomize(rng, 1.0);
    std::vector<std::uint32_t> labels{1, 2};

    Matrix logits = net.forward(x, 4, eng);
    auto before = softmaxCrossEntropy(logits, labels);
    net.backward(before.logit_grad, eng);
    net.step(1e-2, 0.0);
    Matrix logits2 = net.forward(x, 4, eng);
    auto after = softmaxCrossEntropy(logits2, labels);
    EXPECT_LT(after.mean_loss, before.mean_loss);
}

TEST(ElmanRnn, OverfitsASingleBatch)
{
    // BPTT correctness check: repeated steps on one batch must drive
    // the loss to ~0 (impossible with broken gradients).
    Rng rng(7);
    ElmanRnn net(5, 8, 3, rng);
    arith::Fp32Gemm eng;
    Matrix x(3, 4 * 5);
    x.randomize(rng, 1.0);
    std::vector<std::uint32_t> labels{0, 1, 2};
    double loss = 0.0;
    for (int i = 0; i < 400; ++i) {
        Matrix logits = net.forward(x, 4, eng);
        auto res = softmaxCrossEntropy(logits, labels);
        loss = res.mean_loss;
        net.backward(res.logit_grad, eng);
        net.step(0.05, 0.9);
    }
    EXPECT_LT(loss, 0.01);
}

TEST(ElmanRnn, SequenceOrderMatters)
{
    // A recurrent readout must distinguish a sequence from its
    // reversal once trained to separate them.
    Rng rng(11);
    ElmanRnn net(4, 12, 2, rng);
    arith::Fp32Gemm eng;
    const std::size_t steps = 6;
    Matrix x(2, steps * 4);
    // Row 0: tokens 0,1,2,3,0,1 -- row 1: the reverse.
    const int fwd[] = {0, 1, 2, 3, 0, 1};
    for (std::size_t t = 0; t < steps; ++t) {
        x.at(0, t * 4 + fwd[t]) = 1.0f;
        x.at(1, t * 4 + fwd[steps - 1 - t]) = 1.0f;
    }
    std::vector<std::uint32_t> labels{0, 1};
    for (int i = 0; i < 500; ++i) {
        Matrix logits = net.forward(x, steps, eng);
        auto res = softmaxCrossEntropy(logits, labels);
        net.backward(res.logit_grad, eng);
        net.step(0.05, 0.9);
    }
    Matrix logits = net.forward(x, steps, eng);
    auto res = softmaxCrossEntropy(logits, labels);
    EXPECT_EQ(res.error_rate, 0.0);
}

TEST(ChainSequenceDataset, StructureAndDeterminism)
{
    ChainSequenceDataset a(3, 8, 10, 128, 64, 2.0, 5);
    ChainSequenceDataset b(3, 8, 10, 128, 64, 2.0, 5);
    EXPECT_EQ(a.featureDim(), 80u);
    EXPECT_EQ(a.classCount(), 3u);
    EXPECT_EQ(a.vocab(), 8u);
    EXPECT_EQ(a.steps(), 10u);
    EXPECT_EQ(arith::maxAbsDiff(a.validation().inputs,
                                b.validation().inputs),
              0.0);
    // Each step group is one-hot.
    const Batch &v = a.validation();
    for (std::size_t r = 0; r < v.inputs.rows(); ++r) {
        for (std::size_t t = 0; t < 10; ++t) {
            float sum = 0.0f;
            for (std::size_t c = 0; c < 8; ++c)
                sum += v.inputs.at(r, t * 8 + c);
            EXPECT_EQ(sum, 1.0f);
        }
    }
}

TEST(SequenceTrainer, LearnsAboveChance)
{
    ChainSequenceDataset data(4, 10, 12, 768, 256, 2.0, 21);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.batch_size = 32;
    cfg.hidden_dims = {32};
    cfg.sgd.learning_rate = 0.12;
    arith::Fp32Gemm eng;
    auto history = trainSequenceClassifier(data, eng, cfg);
    ASSERT_EQ(history.size(), cfg.epochs);
    // Chance = 75% error; the net must do much better.
    EXPECT_LT(history.back().valid_error, 0.45);
    EXPECT_LT(history.back().valid_loss, history.front().valid_loss);
}

TEST(SequenceTrainer, Hbfp8TracksFp32)
{
    ChainSequenceDataset data(4, 10, 12, 512, 256, 2.2, 23);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batch_size = 32;
    cfg.hidden_dims = {24};
    cfg.sgd.learning_rate = 0.12;
    arith::Fp32Gemm fp32;
    arith::HbfpGemm hbfp8;
    auto h32 = trainSequenceClassifier(data, fp32, cfg);
    auto h8 = trainSequenceClassifier(data, hbfp8, cfg);
    EXPECT_LT(h8.back().valid_error,
              h32.back().valid_error + 0.15);
}

TEST(SequenceTrainer, Deterministic)
{
    ChainSequenceDataset data(3, 8, 8, 256, 64, 2.0, 31);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.batch_size = 32;
    cfg.hidden_dims = {16};
    arith::Fp32Gemm eng;
    auto a = trainSequenceClassifier(data, eng, cfg);
    auto b = trainSequenceClassifier(data, eng, cfg);
    for (std::size_t e = 0; e < a.size(); ++e)
        EXPECT_DOUBLE_EQ(a[e].valid_loss, b[e].valid_loss);
}

} // namespace
} // namespace nn
} // namespace equinox

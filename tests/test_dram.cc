/**
 * @file
 * Unit tests for the DRAM/host link models: bandwidth accounting,
 * queuing, latency, and priority reservation -- the throughput- and
 * latency-limited regimes the paper validates against DRAMsim.
 */

#include <gtest/gtest.h>

#include "dram/hbm.hh"
#include "dram/host_link.hh"

namespace equinox
{
namespace dram
{
namespace
{

PriorityLink::Config
testConfig()
{
    PriorityLink::Config cfg;
    cfg.bandwidth_bytes_per_s = 1000.0; // 1000 B/s
    cfg.latency_s = 0.01;               // 10 cycles at 1 kHz
    cfg.channels = 1;
    return cfg;
}

TEST(PriorityLink, LatencyLimitedRegime)
{
    // At 1 kHz, 1000 B/s = 1 B/cycle, latency 10 cycles.
    PriorityLink link(testConfig(), 1000.0);
    // A 4-byte transfer completes after 4 stream + 10 latency cycles.
    EXPECT_EQ(link.transfer(0, 4, Priority::High), 14u);
}

TEST(PriorityLink, ThroughputLimitedRegime)
{
    PriorityLink link(testConfig(), 1000.0);
    // Back-to-back transfers queue on bandwidth: second starts at 100.
    EXPECT_EQ(link.transfer(0, 100, Priority::High), 110u);
    EXPECT_EQ(link.transfer(0, 100, Priority::High), 210u);
    // After a long idle gap the link is free again.
    EXPECT_EQ(link.transfer(1000, 100, Priority::High), 1110u);
}

TEST(PriorityLink, StreamCyclesRoundUp)
{
    PriorityLink link(testConfig(), 2000.0); // 0.5 B/cycle
    EXPECT_EQ(link.streamCycles(1), 2u);
    EXPECT_EQ(link.streamCycles(3), 6u);
    PriorityLink exact(testConfig(), 1000.0);
    EXPECT_EQ(exact.streamCycles(7), 7u);
}

TEST(PriorityLink, HighPriorityReservesAheadOfLow)
{
    PriorityLink link(testConfig(), 1000.0);
    // A big low-priority transfer occupies [0, 500).
    Tick lp_done = link.transfer(0, 500, Priority::Low);
    EXPECT_EQ(lp_done, 510u);
    // High priority does not wait behind it.
    Tick hp_done = link.transfer(0, 50, Priority::High);
    EXPECT_EQ(hp_done, 60u);
    // The next low-priority transfer restarts behind the reservation.
    Tick lp2 = link.transfer(0, 10, Priority::Low);
    EXPECT_GE(lp2, 510u + 10);
}

TEST(PriorityLink, LowPriorityWaitsBehindHigh)
{
    PriorityLink link(testConfig(), 1000.0);
    link.transfer(0, 200, Priority::High);
    Tick lp = link.transfer(0, 10, Priority::Low);
    EXPECT_EQ(lp, 200u + 10 + 10);
}

TEST(PriorityLink, ByteCountersPerClass)
{
    PriorityLink link(testConfig(), 1000.0);
    link.transfer(0, 100, Priority::High);
    link.transfer(0, 40, Priority::Low);
    link.transfer(0, 60, Priority::Low);
    EXPECT_EQ(link.bytesMoved(Priority::High), 100u);
    EXPECT_EQ(link.bytesMoved(Priority::Low), 100u);
}

TEST(PriorityLink, Utilization)
{
    PriorityLink link(testConfig(), 1000.0);
    link.transfer(0, 250, Priority::High);
    EXPECT_DOUBLE_EQ(link.utilization(1000), 0.25);
    EXPECT_DOUBLE_EQ(link.utilization(0), 0.0);
    // Saturated links clamp at 1.
    link.transfer(0, 10000, Priority::High);
    EXPECT_DOUBLE_EQ(link.utilization(100), 1.0);
}

TEST(PriorityLink, ResetClearsState)
{
    PriorityLink link(testConfig(), 1000.0);
    link.transfer(0, 500, Priority::High);
    link.reset();
    EXPECT_EQ(link.bytesMoved(Priority::High), 0u);
    EXPECT_EQ(link.transfer(0, 10, Priority::High), 20u);
}

TEST(Hbm, DefaultBandwidthIsOneTBps)
{
    auto cfg = hbmDefaultConfig();
    EXPECT_DOUBLE_EQ(cfg.bandwidth_bytes_per_s, 1e12);
    HbmModel hbm(610e6);
    // 1 TB/s at 610 MHz ~ 1639 bytes/cycle.
    EXPECT_NEAR(hbm.bytesPerCycle(), 1e12 / 610e6, 1e-9);
}

TEST(HostLink, DefaultIsPcieClass)
{
    auto cfg = hostDefaultConfig();
    EXPECT_DOUBLE_EQ(cfg.bandwidth_bytes_per_s, 32e9);
    HostLink host(610e6);
    EXPECT_GT(host.latencyCycles(), 0u);
}

} // namespace
} // namespace dram
} // namespace equinox

// Appended: randomized property tests for the link model.

#include "common/random.hh"

namespace equinox
{
namespace dram
{
namespace
{

TEST(PriorityLinkProperty, HighPriorityClassIsWorkConserving)
{
    // For any schedule of back-to-back high-priority transfers, total
    // completion time equals sum(stream) + latency when saturated from
    // tick 0 (no idle gaps inserted by the model).
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        PriorityLink link(testConfig(), 1000.0);
        Tick total_stream = 0;
        Tick last = 0;
        int n = 1 + static_cast<int>(rng.uniformInt(0, 20));
        for (int i = 0; i < n; ++i) {
            ByteCount bytes = 1 + rng.uniformInt(0, 999);
            total_stream += link.streamCycles(bytes);
            last = link.transfer(0, bytes, Priority::High);
        }
        EXPECT_EQ(last, total_stream + link.latencyCycles());
    }
}

TEST(PriorityLinkProperty, CompletionsAreMonotonePerClass)
{
    Rng rng(7);
    PriorityLink link(testConfig(), 1000.0);
    Tick prev_hp = 0, prev_lp = 0;
    Tick now = 0;
    for (int i = 0; i < 200; ++i) {
        now += rng.uniformInt(0, 50);
        ByteCount bytes = 1 + rng.uniformInt(0, 300);
        if (rng.uniform() < 0.5) {
            Tick done = link.transfer(now, bytes, Priority::High);
            EXPECT_GE(done, prev_hp);
            prev_hp = done;
        } else {
            Tick done = link.transfer(now, bytes, Priority::Low);
            EXPECT_GE(done, prev_lp);
            prev_lp = done;
        }
    }
}

TEST(PriorityLinkProperty, CapacityLedgerConservesBandwidth)
{
    // Issue a random mix as fast as possible; the low-priority cursor is
    // the link's capacity ledger, so it must advance by at least the
    // total streamed cycles -- high-priority preemption steals bursts
    // from the loser class rather than minting extra bandwidth.
    Rng rng(11);
    PriorityLink link(testConfig(), 1000.0); // 1 B/cycle
    ByteCount total = 0;
    for (int i = 0; i < 100; ++i) {
        ByteCount bytes = 1 + rng.uniformInt(0, 500);
        total += bytes;
        auto p = rng.uniform() < 0.3 ? Priority::High : Priority::Low;
        link.transfer(0, bytes, p);
    }
    EXPECT_GE(link.nextFree(Priority::Low), total);
}

} // namespace
} // namespace dram
} // namespace equinox

/**
 * @file
 * Differential tier of the memory-hierarchy subsystem.
 *
 * Three identity families plus a seeded fuzz sweep:
 *
 *  1. PASSTHROUGH IDENTITY -- the default (all-disabled) hierarchy
 *     must replay the pre-hierarchy flat HBM timing byte-for-byte.
 *     All four golden FNV-1a digests (priority, fair-share, active
 *     fault plan, training-only) are re-pinned here so a hierarchy
 *     regression is reported by the mem suite, not just the refactor
 *     suite.
 *
 *  2. ENGINE IDENTITY -- with a NON-trivial hierarchy enabled, the
 *     result must not depend on how the simulator ran it: jobs=1 vs
 *     jobs=N sweeps digest-identically, and fast-forward on vs off
 *     digest-identically (with identical mem counters, which are
 *     deliberately outside the digest fold).
 *
 *  3. SEEDED FUZZ -- 12 configurations (cache geometry x prefetcher x
 *     workload) each checking the conservation laws: admitted ==
 *     retired + inflight, scratchpad/write-buffer byte conservation,
 *     prefetch accounting bounds, and monotone trace timestamps.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim_digest.hh"
#include "sim/blocks/trace.hh"

namespace equinox
{
namespace sim
{
namespace
{

using testutil::digestOf;
using testutil::runScenario;

/** The non-trivial hierarchy the engine-identity tests enable. */
mem::MemoryHierarchyConfig
fullHierarchy()
{
    mem::MemoryHierarchyConfig m;
    m.scratchpad.enabled = true;
    m.scratchpad.banks = 2;
    m.scratchpad.bank_bytes = units::KiB(64);
    m.llc.enabled = true;
    m.llc.size_bytes = units::KiB(256);
    m.llc.line_bytes = 256;
    m.llc.ways = 8;
    m.write_buffer.enabled = true;
    m.write_buffer.entries = 8;
    m.write_buffer.entry_bytes = units::KiB(4);
    m.prefetch.kind = mem::PrefetchKind::NextLine;
    m.prefetch.degree = 2;
    return m;
}

// ---------------------------------------------------------------------
// 1. Passthrough identity: the four golden digests
// ---------------------------------------------------------------------

TEST(MemPassthrough, FaultFreePriorityGoldenUnchanged)
{
    auto res = runScenario(SchedPolicy::Priority, {});
    EXPECT_EQ(digestOf(res), testutil::kGoldenFaultFreePriority);
    // Passthrough reports itself inactive with all-zero counters.
    EXPECT_FALSE(res.mem.active);
    EXPECT_EQ(res.mem.reads, 0u);
    EXPECT_EQ(res.mem.dram_transfers, 0u);
}

TEST(MemPassthrough, FaultFreeFairShareGoldenUnchanged)
{
    auto res = runScenario(SchedPolicy::FairShare, {});
    EXPECT_EQ(digestOf(res), testutil::kGoldenFaultFreeFairShare);
}

TEST(MemPassthrough, ActiveFaultPlanGoldenUnchanged)
{
    // The dense plan draws per-transfer RNG through the link fault
    // hook, so this golden additionally pins that passthrough issues
    // EXACTLY the same transfer sequence (count and order) as the
    // pre-hierarchy simulator.
    auto res = runScenario(SchedPolicy::Priority, testutil::densePlan());
    EXPECT_GT(res.faults.totalFaults(), 0u);
    EXPECT_EQ(digestOf(res), testutil::kGoldenActiveFaultPlan);
}

TEST(MemPassthrough, TrainingOnlyGoldenUnchanged)
{
    auto res = testutil::runTrainingOnly();
    EXPECT_EQ(res.training_iterations, 25u);
    EXPECT_EQ(digestOf(res), testutil::kGoldenTrainingOnly);
}

// ---------------------------------------------------------------------
// 2. Engine identity with a non-trivial hierarchy
// ---------------------------------------------------------------------

core::ExperimentOptions
sweepOptions()
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    return opts;
}

TEST(MemEngineIdentity, ParallelSweepMatchesSerialWithHierarchy)
{
    auto cfg = testutil::smallConfig("mem-jobs");
    cfg.mem = fullHierarchy();
    const std::vector<double> loads = {0.15, 0.4, 0.65, 0.85};

    auto serial_opts = sweepOptions();
    serial_opts.jobs = 1;
    auto serial = core::runLoadSweep(cfg, loads, serial_opts);

    auto parallel_opts = sweepOptions();
    parallel_opts.jobs = 4;
    auto parallel = core::runLoadSweep(cfg, loads, parallel_opts);

    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_EQ(digestOf(serial), digestOf(parallel));
    // The diagnostics outside the digest must agree too: each point is
    // a self-contained simulation, so the hierarchy counters cannot
    // depend on which worker ran it.
    for (std::size_t i = 0; i < serial.size(); ++i) {
        const auto &s = serial[i].sim.mem;
        const auto &p = parallel[i].sim.mem;
        ASSERT_TRUE(s.active);
        EXPECT_EQ(s.llc_hits, p.llc_hits) << "point " << i;
        EXPECT_EQ(s.llc_misses, p.llc_misses) << "point " << i;
        EXPECT_EQ(s.dram_transfers, p.dram_transfers) << "point " << i;
        EXPECT_EQ(s.sp_bytes_filled, p.sp_bytes_filled) << "point " << i;
        EXPECT_EQ(s.wb_bytes_in, p.wb_bytes_in) << "point " << i;
    }
}

TEST(MemEngineIdentity, FastForwardOnOffIdenticalWithHierarchy)
{
    auto cfg = testutil::smallConfig("mem-ff");
    cfg.mem = fullHierarchy();

    auto on_opts = sweepOptions();
    on_opts.fast_forward = true;
    auto off_opts = sweepOptions();
    off_opts.fast_forward = false;

    for (double load : {0.0, 0.5}) { // training-only and mixed
        auto on = core::runAtLoad(cfg, load, on_opts);
        auto off = core::runAtLoad(cfg, load, off_opts);
        EXPECT_EQ(digestOf(on.sim), digestOf(off.sim)) << "load " << load;
        // Fast-forward may inline dispatches but must not change what
        // the memory system saw.
        ASSERT_TRUE(on.sim.mem.active);
        EXPECT_EQ(on.sim.mem.llc_hits, off.sim.mem.llc_hits);
        EXPECT_EQ(on.sim.mem.llc_misses, off.sim.mem.llc_misses);
        EXPECT_EQ(on.sim.mem.dram_transfers, off.sim.mem.dram_transfers);
        EXPECT_EQ(on.sim.mem.sp_bytes_filled, off.sim.mem.sp_bytes_filled);
        EXPECT_EQ(on.sim.mem.sp_bytes_drained,
                  off.sim.mem.sp_bytes_drained);
        EXPECT_EQ(on.sim.mem.wb_bytes_drained,
                  off.sim.mem.wb_bytes_drained);
    }
}

TEST(MemEngineIdentity, RerunIsDeterministic)
{
    // Same config, same seed, fresh Accelerator: bit-identical results
    // including every hierarchy counter.
    auto cfg = testutil::smallConfig("mem-rerun");
    cfg.mem = fullHierarchy();
    auto opts = sweepOptions();
    auto a = core::runAtLoad(cfg, 0.5, opts);
    auto b = core::runAtLoad(cfg, 0.5, opts);
    EXPECT_EQ(digestOf(a.sim), digestOf(b.sim));
    EXPECT_EQ(a.sim.mem.llc_hits, b.sim.mem.llc_hits);
    EXPECT_EQ(a.sim.mem.prefetch_issued, b.sim.mem.prefetch_issued);
    EXPECT_EQ(a.sim.mem.sp_bank_switches, b.sim.mem.sp_bank_switches);
}

// ---------------------------------------------------------------------
// 3. Seeded fuzz: 12 configs x conservation laws
// ---------------------------------------------------------------------

struct FuzzCell
{
    const char *name;
    mem::MemoryHierarchyConfig mem;
    double load; //!< 0 = training only
};

std::vector<FuzzCell>
fuzzCells()
{
    // Two cache geometries x three prefetchers x two workloads.
    std::vector<FuzzCell> cells;
    struct Geo
    {
        const char *name;
        ByteCount size;
        unsigned ways;
        mem::Replacement rep;
    };
    const Geo geos[] = {
        {"small-lru", units::KiB(16), 4, mem::Replacement::Lru},
        {"large-plru", units::KiB(256), 8, mem::Replacement::PseudoLru},
    };
    const mem::PrefetchKind kinds[] = {mem::PrefetchKind::None,
                                       mem::PrefetchKind::NextLine,
                                       mem::PrefetchKind::Dcpt};
    const double loads[] = {0.0, 0.5};
    for (const auto &g : geos) {
        for (auto kind : kinds) {
            for (double load : loads) {
                mem::MemoryHierarchyConfig m;
                m.scratchpad.enabled = true;
                m.scratchpad.banks = (load == 0.0) ? 2u : 3u;
                m.scratchpad.bank_bytes = units::KiB(32);
                m.llc.enabled = true;
                m.llc.size_bytes = g.size;
                m.llc.line_bytes = 256;
                m.llc.ways = g.ways;
                m.llc.replacement = g.rep;
                m.write_buffer.enabled = true;
                m.write_buffer.entries = 4;
                m.write_buffer.entry_bytes = units::KiB(4);
                m.prefetch.kind = kind;
                m.prefetch.degree = 2;
                cells.push_back({g.name, m, load});
            }
        }
    }
    return cells;
}

TEST(MemFuzz, ConservationLawsHoldAcrossConfigs)
{
    auto cells = fuzzCells();
    ASSERT_EQ(cells.size(), 12u);
    std::uint64_t seed = 1000;
    for (const auto &cell : cells) {
        SCOPED_TRACE(std::string(cell.name) + " prefetch=" +
                     mem::prefetchKindName(cell.mem.prefetch.kind) +
                     " load=" + std::to_string(cell.load));
        ASSERT_TRUE(cell.mem.validate().empty());

        auto cfg = testutil::smallConfig("mem-fuzz");
        cfg.mem = cell.mem;
        core::ExperimentOptions opts;
        opts.model = testutil::tinyRnn();
        opts.train_model = testutil::tinyRnn();
        opts.train_batch = 16;
        opts.warmup_requests = 20;
        opts.measure_requests = 150;
        opts.measure_iterations = 8;
        opts.seed = ++seed;
        VectorTraceSink sink;
        opts.trace_sink = &sink;

        auto r = core::runAtLoad(cfg, cell.load, opts);
        const auto &m = r.sim.mem;
        ASSERT_TRUE(m.active);

        // Request conservation at the horizon.
        EXPECT_EQ(r.sim.admitted_requests,
                  r.sim.retired_requests + r.sim.inflight_requests);

        // The LLC saw traffic and its counters are self-consistent:
        // every access is exactly a hit or a miss.
        EXPECT_GT(m.llc_hits + m.llc_misses, 0u);
        EXPECT_GE(m.hitRate(), 0.0);
        EXPECT_LE(m.hitRate(), 1.0);

        // Prefetch accounting: every issued prefetch is at most once
        // useful or evicted-unused, and the none-policy issues nothing.
        EXPECT_LE(m.prefetch_useful + m.prefetch_unused,
                  m.prefetch_issued);
        if (cell.mem.prefetch.kind == mem::PrefetchKind::None) {
            EXPECT_EQ(m.prefetch_issued, 0u);
        }

        // Scratchpad byte conservation: drained never exceeds filled,
        // and the high-water mark respects capacity.
        EXPECT_GT(m.sp_bytes_filled, 0u);
        EXPECT_LE(m.sp_bytes_drained, m.sp_bytes_filled);
        EXPECT_LE(m.sp_high_water, cell.mem.scratchpad.totalBytes());

        // Write-combining conservation: bytes in == bytes drained +
        // occupancy (whatever is still parked at the horizon).
        EXPECT_EQ(m.wb_bytes_in, m.wb_bytes_drained + m.wb_occupancy);
        EXPECT_GT(m.wb_writes, 0u);

        // Every transfer the hierarchy issued flowed through the link:
        // misses, prefetches and write bursts are all accounted.
        EXPECT_GE(m.dram_transfers, m.prefetch_issued);

        // Trace timestamps are monotone (events are emitted in
        // dispatch order and simulated time never runs backwards), and
        // the scratchpad's staging events stay within capacity.
        Tick prev = 0;
        for (const auto &ev : sink.events()) {
            EXPECT_GE(ev.tick, prev);
            prev = ev.tick;
            if (ev.type == TraceEventType::MemStage) {
                EXPECT_GT(ev.a, 0u);
                EXPECT_LE(ev.b, cell.mem.scratchpad.totalBytes());
            }
        }
        EXPECT_GT(sink.count(TraceEventType::MemStage), 0u);
    }
}

} // namespace
} // namespace sim
} // namespace equinox

/**
 * @file
 * Unit tests for src/stats: percentile tracking, histograms, cycle
 * breakdowns and table formatting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "common/random.hh"
#include "stats/counter.hh"
#include "stats/cycle_breakdown.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"

namespace equinox
{
namespace stats
{
namespace
{

TEST(Counter, Accumulates)
{
    Counter c("reqs");
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    EXPECT_EQ(c.name(), "reqs");
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(LatencyTracker, EmptyIsZero)
{
    LatencyTracker t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.99), 0.0);
}

TEST(LatencyTracker, SingleSample)
{
    LatencyTracker t;
    t.record(7.0);
    EXPECT_DOUBLE_EQ(t.mean(), 7.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 7.0);
    EXPECT_DOUBLE_EQ(t.min(), 7.0);
    EXPECT_DOUBLE_EQ(t.max(), 7.0);
}

TEST(LatencyTracker, ExactPercentiles)
{
    LatencyTracker t;
    // 1..100 shuffled: p-quantiles are exactly computable.
    Rng rng(3);
    std::vector<double> v;
    for (int i = 1; i <= 100; ++i)
        v.push_back(i);
    for (std::size_t i = v.size(); i > 1; --i)
        std::swap(v[i - 1], v[rng.uniformInt(0, i - 1)]);
    for (double x : v)
        t.record(x);

    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 100.0);
    // median of 1..100 with linear interpolation: 50.5
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 50.5);
    // p99 of 1..100: rank 98.01 -> 99.01
    EXPECT_NEAR(t.percentile(0.99), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(t.mean(), 50.5);
}

TEST(LatencyTracker, PercentileMonotoneInP)
{
    LatencyTracker t;
    Rng rng(11);
    for (int i = 0; i < 1000; ++i)
        t.record(rng.exponential(1.0));
    double prev = -1.0;
    for (double p = 0.0; p <= 1.0; p += 0.05) {
        double q = t.percentile(p);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

TEST(LatencyTracker, EmptyMinMaxAndBoundaryQuantilesAreZero)
{
    LatencyTracker t;
    EXPECT_DOUBLE_EQ(t.min(), 0.0);
    EXPECT_DOUBLE_EQ(t.max(), 0.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 0.0);
}

TEST(LatencyTracker, RejectsNaNSamples)
{
    LatencyTracker t;
    t.record(1.0);
    t.record(std::nan(""));
    t.record(3.0);
    // The poisoned sample is counted, not stored: every statistic stays
    // finite and the strict weak ordering std::sort needs survives.
    EXPECT_EQ(t.count(), 2u);
    EXPECT_EQ(t.nanRejected(), 1u);
    EXPECT_DOUBLE_EQ(t.mean(), 2.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 2.0);
    EXPECT_DOUBLE_EQ(t.max(), 3.0);
    t.reset();
    EXPECT_EQ(t.nanRejected(), 0u);
    EXPECT_EQ(t.count(), 0u);
}

TEST(LatencyTracker, InfiniteSamplesAreOrderedNormally)
{
    LatencyTracker t;
    t.record(1.0);
    t.record(std::numeric_limits<double>::infinity());
    EXPECT_EQ(t.count(), 2u);
    EXPECT_TRUE(std::isinf(t.max()));
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
}

TEST(LatencyTrackerDeath, OutOfRangeQuantileIsFatal)
{
    LatencyTracker t;
    t.record(1.0);
    EXPECT_DEATH(t.percentile(1.5), "quantile out of range");
    EXPECT_DEATH(t.percentile(-0.1), "quantile out of range");
    // A NaN p fails the same range check instead of indexing garbage.
    EXPECT_DEATH(t.percentile(std::nan("")), "quantile out of range");
}

TEST(LatencyTracker, RecordAfterQueryStaysCorrect)
{
    LatencyTracker t;
    t.record(10.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 10.0);
    t.record(20.0);
    t.record(0.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(t.max(), 20.0);
}

TEST(LogHistogram, BucketsAndOverflow)
{
    LogHistogram h(1.0, 1000.0, 1); // 3 buckets: [1,10), [10,100), ...
    EXPECT_EQ(h.bucketCount(), 3u);
    h.record(5.0);
    h.record(50.0);
    h.record(0.5);    // underflow
    h.record(5000.0); // overflow
    EXPECT_EQ(h.bucketValue(0), 1u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(2), 0u);
    EXPECT_EQ(h.underflows(), 1u);
    EXPECT_EQ(h.overflows(), 1u);
}

TEST(LogHistogram, OutOfRangeSamplesClampWithoutUndefinedCasts)
{
    LogHistogram h(1.0, 1000.0, 1);
    // NaN is rejected and counted separately; +inf and any finite value
    // past the last bucket clamp to the overflow counter -- neither is
    // ever converted to a bucket index (size_t casts of NaN/inf/huge
    // doubles are undefined behaviour).
    h.record(std::nan(""));
    h.record(std::numeric_limits<double>::infinity());
    h.record(1e300);
    h.record(1000.0); // exactly the upper bound: first index past range
    EXPECT_EQ(h.nanRejected(), 1u);
    EXPECT_EQ(h.overflows(), 3u);
    EXPECT_EQ(h.underflows(), 0u);
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        EXPECT_EQ(h.bucketValue(i), 0u);
    // -inf and negative values fall below lo and count as underflow.
    h.record(-std::numeric_limits<double>::infinity());
    h.record(-5.0);
    EXPECT_EQ(h.underflows(), 2u);
}

TEST(LogHistogram, MidpointsAreGeometric)
{
    LogHistogram h(1.0, 100.0, 1);
    EXPECT_NEAR(h.bucketMid(0), std::sqrt(10.0), 1e-9);
    EXPECT_NEAR(h.bucketMid(1), std::sqrt(1000.0), 1e-6);
}

TEST(CycleBreakdown, FractionsSumToOne)
{
    CycleBreakdown b;
    b.add(CycleClass::Working, 60.0);
    b.add(CycleClass::Dummy, 25.0);
    b.add(CycleClass::Idle, 10.0);
    b.add(CycleClass::Other, 5.0);
    EXPECT_DOUBLE_EQ(b.total(), 100.0);
    double sum = 0.0;
    for (auto c : {CycleClass::Working, CycleClass::Dummy, CycleClass::Idle,
                   CycleClass::Other})
        sum += b.fraction(c);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(b.fraction(CycleClass::Working), 0.6);
}

TEST(CycleBreakdown, MergeAccumulates)
{
    CycleBreakdown a, b;
    a.add(CycleClass::Working, 10.0);
    b.add(CycleClass::Idle, 30.0);
    a += b;
    EXPECT_DOUBLE_EQ(a.get(CycleClass::Working), 10.0);
    EXPECT_DOUBLE_EQ(a.get(CycleClass::Idle), 30.0);
    EXPECT_DOUBLE_EQ(a.total(), 40.0);
}

TEST(CycleBreakdown, EmptyFractionsZero)
{
    CycleBreakdown b;
    EXPECT_DOUBLE_EQ(b.fraction(CycleClass::Idle), 0.0);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addSeparator();
    t.addRow({"b", "12345"});
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("12345"), std::string::npos);
    // All lines equally wide.
    std::istringstream lines(s);
    std::string line;
    std::size_t width = 0;
    while (std::getline(lines, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(LatencyTrackerMerge, ExactlyEqualsConcatenation)
{
    // Merged percentiles must be order statistics of the concatenated
    // sample sets -- bit-for-bit what record()ing every sample into one
    // tracker yields, never a recombination of the parts' quantiles.
    Rng rng(7);
    LatencyTracker a, b, concat;
    for (int i = 0; i < 257; ++i) {
        double s = rng.exponential(0.01);
        a.record(s);
        concat.record(s);
    }
    for (int i = 0; i < 63; ++i) {
        double s = rng.exponential(0.1);
        b.record(s);
        concat.record(s);
    }
    a.merge(b);
    ASSERT_EQ(a.count(), concat.count());
    for (double p : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
        EXPECT_EQ(a.percentile(p), concat.percentile(p)) << "p" << p;
    EXPECT_EQ(a.min(), concat.min());
    EXPECT_EQ(a.max(), concat.max());
    EXPECT_DOUBLE_EQ(a.mean(), concat.mean());
}

TEST(LatencyTrackerMerge, EmptyContributorCannotPoisonTheMean)
{
    // The zero-weight-neighbour class of bug (PR 4): combining parts
    // via weighted means multiplies an empty part's 0 count into its
    // mean -- 0 * (0/0) = NaN -- and one empty replica would poison the
    // fleet. merge() adds raw sums instead, so an empty contributor is
    // exactly a no-op.
    LatencyTracker full, empty;
    full.record(10.0);
    full.record(30.0);
    full.merge(empty);
    EXPECT_EQ(full.count(), 2u);
    EXPECT_DOUBLE_EQ(full.mean(), 20.0);
    EXPECT_DOUBLE_EQ(full.percentile(0.5), 20.0);

    // Merging INTO an empty tracker is a plain copy of the samples.
    empty.merge(full);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 20.0);

    // Both empty stays empty (and every statistic stays finite).
    LatencyTracker e1, e2;
    e1.merge(e2);
    EXPECT_EQ(e1.count(), 0u);
    EXPECT_DOUBLE_EQ(e1.mean(), 0.0);
    EXPECT_DOUBLE_EQ(e1.percentile(0.99), 0.0);
}

TEST(LatencyTrackerMerge, InfiniteSamplesMergeAsOrderedValues)
{
    LatencyTracker a, b;
    a.record(1.0);
    b.record(std::numeric_limits<double>::infinity());
    b.record(2.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_TRUE(std::isinf(a.max()));
    EXPECT_TRUE(std::isinf(a.percentile(1.0)));
    EXPECT_DOUBLE_EQ(a.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 2.0);
}

TEST(LatencyTrackerMerge, CarriesNanRejectionCounts)
{
    LatencyTracker a, b;
    a.record(std::nan(""));
    a.record(1.0);
    b.record(std::nan(""));
    b.record(std::nan(""));
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.nanRejected(), 3u);
}

TEST(LatencyTrackerMerge, SelfMergeDoublesTheSamples)
{
    LatencyTracker t;
    t.record(1.0);
    t.record(3.0);
    t.merge(t);
    EXPECT_EQ(t.count(), 4u);
    EXPECT_DOUBLE_EQ(t.mean(), 2.0);
    EXPECT_DOUBLE_EQ(t.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(t.percentile(1.0), 3.0);
}

TEST(LatencyTrackerMerge, MergeAfterQueryStaysSorted)
{
    // merge() appends to a lazily-sorted buffer; a query between
    // merges must not freeze a stale sort.
    LatencyTracker a, b;
    a.record(10.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 10.0); // sorts a
    b.record(0.0);
    b.record(20.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(a.percentile(1.0), 20.0);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), 10.0);
}

} // namespace
} // namespace stats
} // namespace equinox

// Appended: fault-statistics merge tests (the cluster result merge).

#include "stats/fault_stats.hh"

namespace equinox
{
namespace stats
{
namespace
{

TEST(FaultStatsMerge, AccumulatesEveryCounter)
{
    FaultStats a, b;
    a.dram_corrected = 1;
    a.mmu_hangs = 2;
    a.watchdog_resets = 1;
    a.downtime_cycles = 100;
    a.recovery_cycles.record(50.0);

    b.dram_corrected = 10;
    b.dram_uncorrectable = 3;
    b.host_drops = 4;
    b.host_corruptions = 5;
    b.mmu_hangs = 6;
    b.host_retries = 7;
    b.host_give_ups = 8;
    b.watchdog_resets = 9;
    b.checkpoints_written = 10;
    b.rollbacks = 11;
    b.lost_training_iterations = 12;
    b.shed_requests = 13;
    b.storms_entered = 14;
    b.downtime_cycles = 900;
    b.recovery_cycles.record(150.0);

    a.merge(b);
    EXPECT_EQ(a.dram_corrected, 11u);
    EXPECT_EQ(a.dram_uncorrectable, 3u);
    EXPECT_EQ(a.host_drops, 4u);
    EXPECT_EQ(a.host_corruptions, 5u);
    EXPECT_EQ(a.mmu_hangs, 8u);
    EXPECT_EQ(a.host_retries, 7u);
    EXPECT_EQ(a.host_give_ups, 8u);
    EXPECT_EQ(a.watchdog_resets, 10u);
    EXPECT_EQ(a.checkpoints_written, 10u);
    EXPECT_EQ(a.rollbacks, 11u);
    EXPECT_EQ(a.lost_training_iterations, 12u);
    EXPECT_EQ(a.shed_requests, 13u);
    EXPECT_EQ(a.storms_entered, 14u);
    EXPECT_EQ(a.downtime_cycles, 1000u);
    EXPECT_EQ(a.recovery_cycles.count(), 2u);
    EXPECT_DOUBLE_EQ(a.recovery_cycles.mean(), 100.0);
    EXPECT_EQ(a.totalFaults(), b.totalFaults() + 1 + 2);
}

TEST(FaultStatsMerge, MergingZeroRecordIsANoOp)
{
    FaultStats a, zero;
    a.mmu_hangs = 3;
    a.downtime_cycles = 70;
    a.recovery_cycles.record(10.0);
    a.merge(zero);
    EXPECT_EQ(a.mmu_hangs, 3u);
    EXPECT_EQ(a.downtime_cycles, 70u);
    EXPECT_EQ(a.recovery_cycles.count(), 1u);
    EXPECT_DOUBLE_EQ(a.recovery_cycles.mean(), 10.0);
}

} // namespace
} // namespace stats
} // namespace equinox

// Appended: named-statistics registry tests.

#include <sstream>

#include "stats/registry.hh"

namespace equinox
{
namespace stats
{
namespace
{

TEST(StatRegistry, RegisterAndRead)
{
    StatRegistry reg;
    int counter = 0;
    reg.registerStat("mmu.busy", [&] { return counter * 1.0; }, "cycles");
    reg.setValue("cfg.n", 143.0);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_TRUE(reg.contains("mmu.busy"));
    EXPECT_FALSE(reg.contains("mmu.idle"));
    EXPECT_DOUBLE_EQ(reg.value("mmu.busy"), 0.0);
    counter = 7;
    EXPECT_DOUBLE_EQ(reg.value("mmu.busy"), 7.0); // live getter
    EXPECT_DOUBLE_EQ(reg.value("cfg.n"), 143.0);
}

TEST(StatRegistry, ReRegistrationReplaces)
{
    StatRegistry reg;
    reg.setValue("x", 1.0);
    reg.setValue("x", 2.0);
    EXPECT_EQ(reg.size(), 1u);
    EXPECT_DOUBLE_EQ(reg.value("x"), 2.0);
}

TEST(StatRegistry, DumpIsSortedAndComplete)
{
    StatRegistry reg;
    reg.setValue("b.second", 2.0, "two");
    reg.setValue("a.first", 1.0, "one");
    std::ostringstream oss;
    reg.dump(oss);
    std::string s = oss.str();
    auto a_pos = s.find("a.first");
    auto b_pos = s.find("b.second");
    EXPECT_NE(a_pos, std::string::npos);
    EXPECT_NE(b_pos, std::string::npos);
    EXPECT_LT(a_pos, b_pos);
    EXPECT_NE(s.find("two"), std::string::npos);
}

TEST(StatRegistryDeath, MissingStatIsFatal)
{
    StatRegistry reg;
    EXPECT_DEATH(reg.value("nope"), "no statistic named");
}

} // namespace
} // namespace stats
} // namespace equinox

// Appended: empty / single-sample merge regression pins (the
// overload-resilience PR folds these trackers into cluster digests, so
// the merged bit patterns must stay exactly stable).

#include "stats/fault_stats.hh"

namespace equinox
{
namespace stats
{
namespace
{

TEST(LatencyTrackerMerge, SingleSampleIntoEmptyPinsBitwise)
{
    // One sample through a merge must come out bit-identical: count 1,
    // mean/min/max/percentiles exactly the recorded double.
    const double sample = 0.12345678901234567;
    LatencyTracker src;
    src.record(sample);

    LatencyTracker dst;
    dst.merge(src);
    EXPECT_EQ(dst.count(), 1u);
    EXPECT_EQ(dst.mean(), sample);
    EXPECT_EQ(dst.min(), sample);
    EXPECT_EQ(dst.max(), sample);
    for (double p : {0.0, 0.5, 0.99, 1.0})
        EXPECT_EQ(dst.percentile(p), sample) << "p" << p;

    // And the mirror image: empty merged into single-sample.
    LatencyTracker single;
    single.record(sample);
    single.merge(LatencyTracker{});
    EXPECT_EQ(single.count(), 1u);
    EXPECT_EQ(single.mean(), sample);
    EXPECT_EQ(single.percentile(0.5), sample);
}

TEST(LatencyTrackerMerge, TwoSingleSamplesInterpolateExactly)
{
    // The interpolated order statistic over {1.0, 3.0} is pinned: p50
    // sits exactly halfway, p0/p100 on the samples themselves.
    LatencyTracker a, b;
    a.record(1.0);
    b.record(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.percentile(0.0), 1.0);
    EXPECT_EQ(a.percentile(1.0), 3.0);
    EXPECT_EQ(a.percentile(0.5), 2.0);
    EXPECT_EQ(a.mean(), 2.0);
}

TEST(FaultStatsMerge, SingleSampleRecoveryTrackerSurvivesMergeChain)
{
    // empty <- single <- empty must leave the one recovery sample (and
    // every counter) bitwise intact through the whole chain.
    const double cycles = 12345.6789;
    FaultStats single;
    single.mmu_hangs = 1;
    single.recovery_cycles.record(cycles);

    FaultStats acc;
    acc.merge(FaultStats{});
    acc.merge(single);
    acc.merge(FaultStats{});
    EXPECT_EQ(acc.mmu_hangs, 1u);
    EXPECT_EQ(acc.totalFaults(), 1u);
    EXPECT_EQ(acc.recovery_cycles.count(), 1u);
    EXPECT_EQ(acc.recovery_cycles.mean(), cycles);
    EXPECT_EQ(acc.recovery_cycles.percentile(0.99), cycles);

    // Both-empty merge stays a true zero record.
    FaultStats e1, e2;
    e1.merge(e2);
    EXPECT_EQ(e1.totalFaults(), 0u);
    EXPECT_EQ(e1.downtime_cycles, 0u);
    EXPECT_EQ(e1.recovery_cycles.count(), 0u);
    EXPECT_EQ(e1.recovery_cycles.mean(), 0.0);
}

} // namespace
} // namespace stats
} // namespace equinox

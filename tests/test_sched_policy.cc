/**
 * @file
 * Unit tests for the pluggable execution-unit scheduling policies
 * (section 3.2), exercising every decision point in isolation: the
 * priority scheduler's three regimes (round-robin, inference-first,
 * spike freeze), the fair-share and inference-only baselines, and the
 * software control plane's idle/turnaround/exclusive gating.
 */

#include <gtest/gtest.h>

#include "sim/blocks/scheduling_policy.hh"
#include "sim/config.hh"

namespace equinox
{
namespace sim
{
namespace
{

/** A view with every predicate pinned to an explicit value. */
SchedulerView
view(bool inf_ready, bool train_ready, bool spike, bool queue_low,
     std::uint64_t pending = 0, Tick now = 0)
{
    SchedulerView v;
    v.now = now;
    v.inference_ready = inf_ready;
    v.training_ready = train_ready;
    v.spike = [spike] { return spike; };
    v.queue_low = [queue_low] { return queue_low; };
    v.pending_work = [pending] { return pending; };
    return v;
}

TEST(InferenceOnlyPolicy, AlwaysVetoesTraining)
{
    InferenceOnlyPolicy p;
    auto d = p.decide(view(true, true, false, true));
    EXPECT_TRUE(d.allow_inference);
    EXPECT_FALSE(d.allow_training);

    d = p.decide(view(false, true, false, true));
    EXPECT_FALSE(d.allow_training);
    EXPECT_EQ(d.revisit_at, kTickMax);
}

TEST(PriorityPolicy, RoundRobinWhileQueueLow)
{
    // Regime 1 (section 3.2): low inference queuing, both classes may
    // issue -- the dispatcher's alternation interleaves them.
    PriorityPolicy p;
    auto d = p.decide(view(true, true, /*spike=*/false,
                           /*queue_low=*/true));
    EXPECT_TRUE(d.allow_inference);
    EXPECT_TRUE(d.allow_training);
}

TEST(PriorityPolicy, InferenceFirstWhenBatchesBackUp)
{
    // Regime 2: queuing is no longer low and a batch is ready, so
    // training is held back and inference issues first.
    PriorityPolicy p;
    auto d = p.decide(view(/*inf_ready=*/true, true, /*spike=*/false,
                           /*queue_low=*/false));
    EXPECT_TRUE(d.allow_inference);
    EXPECT_FALSE(d.allow_training);
}

TEST(PriorityPolicy, TrainingFillsDependenceGaps)
{
    // Regime 2 corollary: batches are backed up but none is
    // dependence-ready this round (a "gap") -- training may fill it.
    PriorityPolicy p;
    auto d = p.decide(view(/*inf_ready=*/false, true, /*spike=*/false,
                           /*queue_low=*/false));
    EXPECT_TRUE(d.allow_training);
}

TEST(PriorityPolicy, SpikeFreezesTrainingEntirely)
{
    // Regime 3: a load spike freezes training even in dependence gaps.
    PriorityPolicy p;
    auto d = p.decide(view(/*inf_ready=*/false, true, /*spike=*/true,
                           /*queue_low=*/false));
    EXPECT_FALSE(d.allow_training);
    EXPECT_TRUE(d.allow_inference);
}

TEST(FairSharePolicy, NeverVetoes)
{
    FairSharePolicy p;
    auto d = p.decide(view(true, true, true, false));
    EXPECT_TRUE(d.allow_inference);
    EXPECT_TRUE(d.allow_training);
    EXPECT_EQ(d.revisit_at, kTickMax);
}

TEST(SoftwareBatchPolicy, TrainingNeedsFullyIdleMachine)
{
    SoftwareBatchPolicy p(/*turnaround_cycles=*/100);
    p.reset();
    // Pending raw requests keep the machine non-idle even when no batch
    // is dependence-ready: the software scheduler must not start
    // training it could not preempt.
    auto d = p.decide(view(/*inf_ready=*/false, true, false, true,
                           /*pending=*/3, /*now=*/1000));
    EXPECT_FALSE(d.allow_training);
    EXPECT_EQ(d.revisit_at, kTickMax); // not idle: no revisit armed
}

TEST(SoftwareBatchPolicy, TurnaroundGateDelaysIdleIssue)
{
    SoftwareBatchPolicy p(/*turnaround_cycles=*/100);
    p.reset();
    // Issue once at t=50: the latch engages and the next decision
    // cannot happen before t=150.
    auto d = p.decide(view(false, true, false, true, 0, /*now=*/50));
    EXPECT_TRUE(d.allow_training);
    p.onTrainingIssue(50);
    EXPECT_TRUE(p.exclusiveTraining());
    p.onTrainingIteration();
    EXPECT_FALSE(p.exclusiveTraining());

    // Idle again at t=100, inside the turnaround: veto, and ask the
    // dispatcher to revisit exactly when the gate opens.
    d = p.decide(view(false, true, false, true, 0, /*now=*/100));
    EXPECT_FALSE(d.allow_training);
    EXPECT_EQ(d.revisit_at, 150u);

    // At the gate the veto lifts.
    d = p.decide(view(false, true, false, true, 0, /*now=*/150));
    EXPECT_TRUE(d.allow_training);
}

TEST(SoftwareBatchPolicy, ExclusiveTrainingBlocksInference)
{
    SoftwareBatchPolicy p(/*turnaround_cycles=*/10);
    p.reset();
    p.onTrainingIssue(0);
    // A software-scheduled training batch cannot be preempted: even a
    // ready inference batch must wait for the iteration to retire.
    auto d = p.decide(view(/*inf_ready=*/true, false, false, true, 5,
                           /*now=*/3));
    EXPECT_FALSE(d.allow_inference);
    p.onTrainingIteration();
    d = p.decide(view(true, false, false, true, 5, /*now=*/4));
    EXPECT_TRUE(d.allow_inference);
}

TEST(SoftwareBatchPolicy, ResetClearsLatchAndGate)
{
    SoftwareBatchPolicy p(/*turnaround_cycles=*/1000);
    p.onTrainingIssue(500); // latch + gate at 1500
    p.reset();
    EXPECT_FALSE(p.exclusiveTraining());
    auto d = p.decide(view(false, true, false, true, 0, /*now=*/0));
    EXPECT_TRUE(d.allow_training);
}

TEST(SchedulingPolicyFactory, BuildsConfiguredPolicy)
{
    AcceleratorConfig cfg;
    cfg.sched_policy = SchedPolicy::InferenceOnly;
    EXPECT_STREQ(makeSchedulingPolicy(cfg)->name(), "inference_only");
    cfg.sched_policy = SchedPolicy::Priority;
    EXPECT_STREQ(makeSchedulingPolicy(cfg)->name(), "priority");
    cfg.sched_policy = SchedPolicy::FairShare;
    EXPECT_STREQ(makeSchedulingPolicy(cfg)->name(), "fair_share");
    cfg.sched_policy = SchedPolicy::SoftwareBatch;
    EXPECT_STREQ(makeSchedulingPolicy(cfg)->name(), "software_batch");
}

TEST(SchedulingPolicyLaziness, PredicatesOnlyPaidWhenConsulted)
{
    // The view's predicates are lazy so a policy only pays for the
    // queue scans it consults; verify the priority policy stops at the
    // spike check when a spike is on.
    PriorityPolicy p;
    int spike_calls = 0, low_calls = 0;
    SchedulerView v;
    v.inference_ready = true;
    v.training_ready = true;
    v.spike = [&] {
        ++spike_calls;
        return true;
    };
    v.queue_low = [&] {
        ++low_calls;
        return false;
    };
    v.pending_work = [] { return std::uint64_t{0}; };
    auto d = p.decide(v);
    EXPECT_FALSE(d.allow_training);
    EXPECT_EQ(spike_calls, 1);
    EXPECT_EQ(low_calls, 0);
}

} // namespace
} // namespace sim
} // namespace equinox

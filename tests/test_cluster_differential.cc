/**
 * @file
 * Differential tests pinning the cluster layer to the single-chip
 * simulator it is built from:
 *
 *  - the tick-trace arrival mode replays a stochastic run
 *    byte-identically (the lemma the router's stream splitting
 *    depends on),
 *  - a 1-replica Cluster is byte-identical to runAtLoad under every
 *    routing policy, fault-free, with an active fault plan, and
 *    training-only,
 *  - a multi-replica cluster point is byte-identical across jobs
 *    counts (the one-replica-per-worker fan-out is pure),
 *  - the golden refactor-identity digests are untouched by the
 *    SimResult fields the cluster layer added.
 */

#include <gtest/gtest.h>

#include "cluster/cluster.hh"
#include "cluster/sweep.hh"
#include "cluster_digest.hh"
#include "common/random.hh"
#include "core/experiment.hh"

namespace equinox
{
namespace
{

/** The tiny sweep design test_parallel_identity uses. */
core::ExperimentOptions
sweepOptions()
{
    core::ExperimentOptions opts;
    opts.model = testutil::tinyRnn();
    opts.train_model = testutil::tinyRnn();
    opts.train_batch = 16;
    opts.warmup_requests = 30;
    opts.measure_requests = 300;
    opts.seed = 17;
    // The router pre-routes the whole horizon; runs here finish in a
    // couple of simulated milliseconds, so 20 ms is ample and keeps
    // the candidate streams small.
    opts.max_sim_s = 0.02;
    return opts;
}

/**
 * Replay the service-0 candidate recipe RequestDispatcher draws when
 * running stochastically: Rng(seed * 7919 + 1), exponential waits at
 * @p rate_per_cycle, `Tick(wait) + 1` increments, one candidate past
 * @p max_ticks. This is the same recipe Router::route implements; the
 * test keeps its own copy so a router regression cannot hide.
 */
std::vector<Tick>
replayCandidates(std::uint64_t seed, double rate_per_cycle, Tick max_ticks)
{
    std::vector<Tick> out;
    Rng rng(seed * 7919 + 1);
    Tick t = 0;
    while (true) {
        double wait = rng.exponential(rate_per_cycle);
        t += static_cast<Tick>(wait) + 1;
        out.push_back(t);
        if (t > max_ticks)
            break;
    }
    return out;
}

sim::SimResult
runSingle(const sim::RunSpec &spec, const fault::FaultPlan &faults = {})
{
    auto cfg = testutil::smallConfig();
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);
    accel.installInference(compiler.compileInference(testutil::tinyRnn()));
    accel.installTraining(
        compiler.compileTraining(testutil::tinyRnn(), 16));
    sim::RunSpec s = spec;
    s.faults = faults;
    return accel.run(s);
}

// ---------------------------------------------------------------------
// The lemma: feeding a run the exact candidate ticks its stochastic
// twin would have drawn reproduces that twin byte for byte.

TEST(ClusterLemma, TickTraceReplaysStochasticRun)
{
    auto cfg = testutil::smallConfig();
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.max_sim_s = 0.02;
    spec.seed = 17;
    {
        workload::Compiler compiler(cfg);
        sim::Accelerator probe(cfg);
        probe.installInference(
            compiler.compileInference(testutil::tinyRnn()));
        spec.arrival_rate_per_s = 0.4 * probe.maxRequestRate();
    }

    sim::SimResult stochastic = runSingle(spec);

    sim::RunSpec traced = spec;
    traced.arrival_trace_ticks = replayCandidates(
        spec.seed, spec.arrival_rate_per_s / cfg.frequency_hz,
        units::secondsToCycles(spec.max_sim_s, cfg.frequency_hz));
    sim::SimResult replayed = runSingle(traced);

    EXPECT_EQ(testutil::digestOf(replayed),
              testutil::digestOf(stochastic));
    EXPECT_EQ(replayed.admitted_requests, stochastic.admitted_requests);
    EXPECT_EQ(replayed.retired_requests, stochastic.retired_requests);
    EXPECT_EQ(replayed.inflight_requests, stochastic.inflight_requests);
}

TEST(ClusterLemma, TickTraceReplaysBurstyRun)
{
    auto cfg = testutil::smallConfig();
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.max_sim_s = 0.02;
    spec.seed = 23;
    spec.arrival_process = sim::ArrivalProcess::Bursty;
    {
        workload::Compiler compiler(cfg);
        sim::Accelerator probe(cfg);
        probe.installInference(
            compiler.compileInference(testutil::tinyRnn()));
        spec.arrival_rate_per_s = 0.4 * probe.maxRequestRate();
    }

    sim::SimResult stochastic = runSingle(spec);

    // Bursty candidates are drawn at the peak (burst_factor x mean)
    // rate; the on/off thinning happens at arrival and applies to
    // trace-fed candidates identically.
    sim::RunSpec traced = spec;
    traced.arrival_trace_ticks = replayCandidates(
        spec.seed,
        spec.arrival_rate_per_s * spec.burst_factor / cfg.frequency_hz,
        units::secondsToCycles(spec.max_sim_s, cfg.frequency_hz));
    sim::SimResult replayed = runSingle(traced);

    EXPECT_EQ(testutil::digestOf(replayed),
              testutil::digestOf(stochastic));
}

TEST(ClusterLemma, TickTraceReplaysFaultPlanRun)
{
    auto cfg = testutil::smallConfig();
    sim::RunSpec spec;
    spec.warmup_requests = 30;
    spec.measure_requests = 400;
    spec.max_sim_s = 0.02;
    spec.seed = 17;
    {
        workload::Compiler compiler(cfg);
        sim::Accelerator probe(cfg);
        probe.installInference(
            compiler.compileInference(testutil::tinyRnn()));
        spec.arrival_rate_per_s = 0.4 * probe.maxRequestRate();
    }

    sim::SimResult stochastic = runSingle(spec, testutil::densePlan());

    sim::RunSpec traced = spec;
    traced.arrival_trace_ticks = replayCandidates(
        spec.seed, spec.arrival_rate_per_s / cfg.frequency_hz,
        units::secondsToCycles(spec.max_sim_s, cfg.frequency_hz));
    sim::SimResult replayed = runSingle(traced, testutil::densePlan());

    EXPECT_EQ(testutil::digestOf(replayed),
              testutil::digestOf(stochastic));
}

// ---------------------------------------------------------------------
// 1-replica cluster == single accelerator, under every policy.

TEST(ClusterDifferential, OneReplicaMatchesSingleAccelerator)
{
    auto cfg = testutil::smallConfig();
    auto opts = sweepOptions();
    auto compiled = core::compileWorkload(cfg, opts);

    for (double load : {0.4, 0.85}) {
        core::LoadPointResult single =
            core::runAtLoad(cfg, load, opts, compiled);
        for (auto policy : cluster::allRoutingPolicies()) {
            cluster::ClusterSpec cspec;
            cspec.replicas = 1;
            cspec.policy = policy;
            cluster::Cluster fleet(cfg, cspec);
            cluster::ClusterPointResult res =
                fleet.run(load, opts, compiled);

            ASSERT_EQ(res.per_replica.size(), 1u);
            EXPECT_EQ(testutil::digestOf(res.per_replica[0].sim),
                      testutil::digestOf(single.sim))
                << "policy " << cluster::routingPolicyName(policy)
                << " load " << load;
            // The merged percentiles are the single replica's samples,
            // so the derived seconds match bitwise, not approximately.
            EXPECT_EQ(res.mean_latency_s, single.sim.mean_latency_s);
            EXPECT_EQ(res.p50_latency_s, single.sim.p50_latency_s);
            EXPECT_EQ(res.p99_latency_s, single.sim.p99_latency_s);
            EXPECT_EQ(res.max_latency_s, single.sim.max_latency_s);
            EXPECT_EQ(res.completed_requests,
                      single.sim.completed_requests);
            EXPECT_TRUE(res.per_replica[0].training);
        }
    }
}

TEST(ClusterDifferential, OneReplicaMatchesUnderActiveFaultPlan)
{
    auto cfg = testutil::smallConfig();
    auto opts = sweepOptions();
    opts.fault_plan = testutil::densePlan();
    auto compiled = core::compileWorkload(cfg, opts);

    core::LoadPointResult single =
        core::runAtLoad(cfg, 0.4, opts, compiled);
    for (auto policy : cluster::allRoutingPolicies()) {
        cluster::ClusterSpec cspec;
        cspec.replicas = 1;
        cspec.policy = policy;
        cluster::Cluster fleet(cfg, cspec);
        cluster::ClusterPointResult res = fleet.run(0.4, opts, compiled);
        ASSERT_EQ(res.per_replica.size(), 1u);
        EXPECT_EQ(testutil::digestOf(res.per_replica[0].sim),
                  testutil::digestOf(single.sim))
            << "policy " << cluster::routingPolicyName(policy);
    }
}

TEST(ClusterDifferential, OneReplicaMatchesTrainingOnly)
{
    auto cfg = testutil::smallConfig();
    auto opts = sweepOptions();
    auto compiled = core::compileWorkload(cfg, opts);

    core::LoadPointResult single =
        core::runAtLoad(cfg, 0.0, opts, compiled);
    cluster::Cluster fleet(cfg, {});
    cluster::ClusterPointResult res = fleet.run(0.0, opts, compiled);
    ASSERT_EQ(res.per_replica.size(), 1u);
    EXPECT_EQ(res.generated_candidates, 0u);
    EXPECT_EQ(testutil::digestOf(res.per_replica[0].sim),
              testutil::digestOf(single.sim));
}

// ---------------------------------------------------------------------
// jobs identity: the replica fan-out is byte-identical to the serial
// loop, for every policy, with faults and outages in play.

TEST(ClusterDifferential, JobsCountDoesNotChangeClusterPoint)
{
    auto cfg = testutil::smallConfig();
    auto opts_serial = sweepOptions();
    auto opts_parallel = sweepOptions();
    opts_parallel.jobs = 4;
    auto compiled = core::compileWorkload(cfg, opts_serial);

    for (auto policy : cluster::allRoutingPolicies()) {
        cluster::ClusterSpec cspec;
        cspec.replicas = 4;
        cspec.policy = policy;
        cspec.train_replicas = 2;
        cluster::Cluster fleet(cfg, cspec);
        EXPECT_EQ(
            testutil::digestOf(fleet.run(0.7, opts_serial, compiled)),
            testutil::digestOf(fleet.run(0.7, opts_parallel, compiled)))
            << "policy " << cluster::routingPolicyName(policy);
    }
}

TEST(ClusterDifferential, JobsCountDoesNotChangeFaultyOutageSweep)
{
    auto cfg = testutil::smallConfig();
    auto opts_serial = sweepOptions();
    opts_serial.fault_plan = testutil::densePlan();
    auto opts_parallel = opts_serial;
    opts_parallel.jobs = 4;

    cluster::ClusterSpec cspec;
    cspec.replicas = 3;
    cspec.policy = cluster::RoutingPolicy::JoinShortestQueue;
    cspec.outages.push_back({1, 0.001, 0.004});

    const std::vector<double> loads = {0.25, 0.55, 0.85};
    EXPECT_EQ(testutil::digestOf(
                  core::runClusterSweep(cfg, cspec, loads, opts_serial)),
              testutil::digestOf(core::runClusterSweep(cfg, cspec, loads,
                                                       opts_parallel)));
}

// ---------------------------------------------------------------------
// The golden single-chip digests survive the SimResult additions.

TEST(ClusterDifferential, GoldenDigestsUnchanged)
{
    EXPECT_EQ(testutil::digestOf(testutil::runScenario(
                  sim::SchedPolicy::Priority, {})),
              testutil::kGoldenFaultFreePriority);
    EXPECT_EQ(testutil::digestOf(testutil::runScenario(
                  sim::SchedPolicy::Priority, testutil::densePlan())),
              testutil::kGoldenActiveFaultPlan);
}

} // namespace
} // namespace equinox

/**
 * @file
 * Unit and property tests for the software bfloat16 implementation.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "arith/bfloat16.hh"
#include "common/random.hh"

namespace equinox
{
namespace arith
{
namespace
{

TEST(Bfloat16, ExactSmallIntegers)
{
    // Integers up to 256 have <= 8 significant bits and round exactly.
    for (int i = -256; i <= 256; ++i) {
        Bfloat16 b(static_cast<float>(i));
        EXPECT_EQ(b.toFloat(), static_cast<float>(i)) << "i=" << i;
    }
}

TEST(Bfloat16, PowersOfTwoExact)
{
    for (int e = -100; e <= 100; ++e) {
        float v = std::ldexp(1.0f, e);
        EXPECT_EQ(Bfloat16(v).toFloat(), v) << "e=" << e;
    }
}

TEST(Bfloat16, RelativeErrorBound)
{
    // bfloat16 has 8 significand bits -> relative error <= 2^-8.
    Rng rng(17);
    for (int i = 0; i < 100000; ++i) {
        float v = static_cast<float>(rng.normal(0.0, 100.0));
        if (v == 0.0f)
            continue;
        float r = roundToBf16(v);
        EXPECT_LE(std::abs(r - v) / std::abs(v), 1.0 / 256.0) << v;
    }
}

TEST(Bfloat16, RoundToNearestEvenTies)
{
    // 1 + 2^-8 is exactly halfway between 1.0 and the next bf16 value
    // (1 + 2^-7); RNE picks the even mantissa, i.e. 1.0.
    float halfway = 1.0f + std::ldexp(1.0f, -8);
    EXPECT_EQ(roundToBf16(halfway), 1.0f);
    // 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; RNE picks 1+2^-6.
    float halfway2 = 1.0f + 3.0f * std::ldexp(1.0f, -8);
    EXPECT_EQ(roundToBf16(halfway2), 1.0f + std::ldexp(1.0f, -6));
}

TEST(Bfloat16, RoundingIsMonotone)
{
    Rng rng(23);
    for (int i = 0; i < 50000; ++i) {
        float a = static_cast<float>(rng.normal(0.0, 10.0));
        float b = static_cast<float>(rng.normal(0.0, 10.0));
        if (a > b)
            std::swap(a, b);
        EXPECT_LE(roundToBf16(a), roundToBf16(b));
    }
}

TEST(Bfloat16, IdempotentRounding)
{
    Rng rng(29);
    for (int i = 0; i < 10000; ++i) {
        float v = static_cast<float>(rng.normal(0.0, 1.0));
        float once = roundToBf16(v);
        EXPECT_EQ(roundToBf16(once), once);
    }
}

TEST(Bfloat16, SpecialValues)
{
    float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(Bfloat16(inf).toFloat(), inf);
    EXPECT_EQ(Bfloat16(-inf).toFloat(), -inf);
    EXPECT_TRUE(std::isnan(Bfloat16(std::nanf("")).toFloat()));
    EXPECT_EQ(Bfloat16(0.0f).toFloat(), 0.0f);
    // Signed zero preserved.
    EXPECT_TRUE(std::signbit(Bfloat16(-0.0f).toFloat()));
}

TEST(Bfloat16, LargeFiniteRoundsToInfinity)
{
    // Values above the bf16 max finite (~3.39e38) overflow on rounding.
    float huge = 3.4e38f;
    float r = roundToBf16(huge);
    EXPECT_TRUE(std::isinf(r) || r >= 3.3e38f);
}

TEST(Bfloat16, ArithmeticRoundsResults)
{
    Bfloat16 a(1.0f), b(std::ldexp(1.0f, -9));
    // 1 + 2^-9 rounds back to 1 in bf16.
    EXPECT_EQ((a + b).toFloat(), 1.0f);
    Bfloat16 c(3.0f), d(2.0f);
    EXPECT_EQ((c * d).toFloat(), 6.0f);
    EXPECT_EQ((c - d).toFloat(), 1.0f);
    EXPECT_EQ((c / d).toFloat(), 1.5f);
    EXPECT_EQ((-c).toFloat(), -3.0f);
}

TEST(Bfloat16, BitsRoundTrip)
{
    Rng rng(31);
    for (int i = 0; i < 10000; ++i) {
        float v = static_cast<float>(rng.normal(0.0, 5.0));
        Bfloat16 b(v);
        EXPECT_EQ(Bfloat16::fromBits(b.bits()).toFloat(), b.toFloat());
    }
}

} // namespace
} // namespace arith
} // namespace equinox

/**
 * @file
 * HBFP training demo: train the same network on the same data with the
 * fp32 and hbfp8 arithmetic engines and watch the trajectories track
 * each other -- the property (Figure 2) that lets Equinox run training
 * on a fixed-point-dense datapath.
 *
 * Build tree usage:  ./build/examples/hbfp_trainer [epochs]
 */

#include <cstdio>
#include <cstdlib>

#include "arith/gemm.hh"
#include "nn/datasets.hh"
#include "nn/trainer.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;

    std::size_t epochs = argc > 1
                             ? static_cast<std::size_t>(
                                   std::atoi(argv[1]))
                             : 12;

    // An 8-class nonlinear classification task.
    nn::ClusterDataset data(8, 24, 2048, 1024, 0.35, 1234);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batch_size = 64;
    cfg.hidden_dims = {96, 48};
    cfg.sgd.learning_rate = 0.05;
    cfg.sgd.decay_epochs = {3 * epochs / 5, 5 * epochs / 6};

    std::printf("training an MLP (%zu->96->48->%zu) on %zu examples, "
                "%zu epochs\n",
                data.featureDim(), data.classCount(), data.trainSize(),
                epochs);

    arith::Fp32Gemm fp32;
    arith::HbfpGemm hbfp8;
    auto h32 = nn::trainClassifier(data, fp32, cfg);
    auto h8 = nn::trainClassifier(data, hbfp8, cfg);

    std::printf("\n%6s %16s %16s %12s\n", "epoch", "fp32 val err %",
                "hbfp8 val err %", "difference");
    for (std::size_t e = 0; e < epochs; ++e) {
        std::printf("%6zu %16.2f %16.2f %+11.2f%%\n", e + 1,
                    h32[e].valid_error * 100, h8[e].valid_error * 100,
                    (h8[e].valid_error - h32[e].valid_error) * 100);
    }
    std::printf("\nhbfp8 runs all matrix math as 8-bit integer dot "
                "products with shared\nexponents and 25-bit "
                "accumulators -- the Equinox datapath -- yet lands "
                "within\nnoise of fp32.\n");
    return 0;
}

/**
 * @file
 * Multi-tenant scenario: two online inference services (the translation
 * LSTM and the speech GRU) share one Equinox accelerator through
 * separate hardware contexts -- each with its own request queue and
 * batch-formation state -- while a training job rides the remaining
 * idle cycles.
 *
 * Build tree usage:  ./build/examples/multi_tenant
 */

#include <cstdio>

#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);

    auto cfg = core::presetConfig(core::Preset::Us500);
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);

    auto lstm = workload::DnnModel::lstm2048();
    auto gru = workload::DnnModel::gru2816();

    // Install both services; installation allocates exclusive buffer
    // space per hardware context and fails if the footprints collide.
    auto lstm_svc = compiler.compileInference(lstm);
    auto gru_svc = compiler.compileInference(gru);
    double weights_mb =
        static_cast<double>(lstm_svc.weight_footprint +
                            gru_svc.weight_footprint) / (1 << 20);
    accel.installInference(std::move(lstm_svc));
    accel.installInference(std::move(gru_svc));
    accel.installTraining(compiler.compileTraining(lstm, 128));

    std::printf("two inference contexts installed on %s "
                "(%.1f of %.0f MiB weight buffer)\n\n",
                cfg.name.c_str(), weights_mb,
                static_cast<double>(cfg.weight_buffer_bytes) / (1 << 20));

    // Offer each service 30% of its own saturation rate: a combined
    // ~60% machine load with very different request granularities
    // (sub-ms LSTM batches vs ~30 ms GRU batches).
    sim::RunSpec spec;
    spec.arrival_rates = {0.3 * accel.maxRequestRate(0),
                          0.3 * accel.maxRequestRate(1)};
    spec.warmup_requests = 300;
    spec.measure_requests = 4000;
    spec.min_measure_s = 0.2;
    spec.max_sim_s = 30.0;

    auto res = accel.run(spec);

    std::printf("simulated %.0f ms at ~60%% combined load:\n",
                res.sim_seconds * 1e3);
    std::printf("  inference:  %.1f TOp/s across both services, "
                "p99 %.2f ms, max %.2f ms\n",
                res.inference_throughput_ops / 1e12,
                res.p99_latency_s * 1e3, res.max_latency_s * 1e3);
    for (const auto &svc : res.per_service) {
        std::printf("    ctx %u (%s): %llu requests, mean %.2f ms, "
                    "p99 %.2f ms\n",
                    svc.ctx, svc.model_name.c_str(),
                    static_cast<unsigned long long>(svc.completed),
                    svc.mean_latency_s * 1e3, svc.p99_latency_s * 1e3);
    }
    std::printf("  training:   %.1f TOp/s reclaimed (%llu iterations)\n",
                res.training_throughput_ops / 1e12,
                static_cast<unsigned long long>(res.training_iterations));
    std::printf("  MMU: %s\n", res.mmu_breakdown.summary().c_str());
    std::printf("\nNote: the combined latency distribution mixes the "
                "two services -- the GRU's\n~30 ms batches own the "
                "upper percentiles while the LSTM's sub-ms batches\n"
                "slot between them; the per-context breakdown above "
                "separates the SLOs.\n");
    return 0;
}

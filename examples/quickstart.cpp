/**
 * @file
 * Quickstart: build the Equinox_500us accelerator, install the LSTM
 * inference service plus a piggybacked training service, run at 60%
 * load, and print what the accelerator did.
 *
 * Build tree usage:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);

    // 1. Pick a design point. presetConfig() runs the section-4 design
    //    space exploration and returns the Pareto-optimal configuration
    //    under a 500us service-time constraint.
    sim::AcceleratorConfig cfg = core::presetConfig(core::Preset::Us500);
    std::printf("design: %s  (m=%u arrays of %ux%u PEs, %u-wide, "
                "%.0f MHz, %s)\n",
                cfg.name.c_str(), cfg.m, cfg.n, cfg.n, cfg.w,
                cfg.frequency_hz / 1e6,
                arith::encodingName(cfg.encoding));
    std::printf("peak arithmetic rate: %.1f TOp/s\n\n",
                cfg.peakOpRate() / 1e12);

    // 2. Compile the workloads for this design and install them.
    workload::Compiler compiler(cfg);
    sim::Accelerator accel(cfg);

    auto lstm = workload::DnnModel::lstm2048();
    auto service = compiler.compileInference(lstm);
    std::printf("installing %s inference: batch %u, service time "
                "%.0f us, weights %.1f MB on chip\n",
                lstm.name.c_str(), service.program.batch_rows,
                service.service_time_s * 1e6,
                static_cast<double>(service.weight_footprint) / 1e6);
    accel.installInference(std::move(service));
    accel.installTraining(compiler.compileTraining(lstm, 128));

    // 3. Offer a Poisson inference load at 60% of saturation and let
    //    training reclaim the idle cycles.
    sim::RunSpec spec;
    spec.arrival_rate_per_s = 0.6 * accel.maxRequestRate();
    spec.warmup_requests = 300;
    spec.measure_requests = 3000;
    sim::SimResult res = accel.run(spec);

    // 4. Report.
    std::printf("\nsimulated %.1f ms of accelerator time:\n",
                res.sim_seconds * 1e3);
    std::printf("  inference:  %.1f TOp/s delivered, p99 latency "
                "%.2f ms (mean %.2f ms)\n",
                res.inference_throughput_ops / 1e12,
                res.p99_latency_s * 1e3, res.mean_latency_s * 1e3);
    std::printf("  training:   %.1f TOp/s reclaimed from idle cycles "
                "(%llu iterations)\n",
                res.training_throughput_ops / 1e12,
                static_cast<unsigned long long>(res.training_iterations));
    std::printf("  MMU cycles: %s\n",
                res.mmu_breakdown.summary().c_str());
    std::printf("  HBM: %.0f%% utilised, %.2f GB streamed for "
                "training\n",
                res.dram_utilization * 100,
                static_cast<double>(res.dram_train_bytes) / 1e9);
    return 0;
}

/**
 * @file
 * Co-location scenario: an online inference service with the paper's
 * motivating diurnal demand (average load ~30%) hosts a best-effort
 * training job. The example walks a day's load profile hour by hour and
 * reports how many training iterations ride for free while the
 * inference SLO holds.
 *
 * Build tree usage:  ./build/examples/colocated_training
 */

#include <cstdio>
#include <vector>

#include "core/equinox.hh"

int
main()
{
    using namespace equinox;
    setQuietLogging(true);

    auto cfg = core::presetConfig(core::Preset::Us500);
    auto lstm = workload::DnnModel::lstm2048();
    double target_ms = core::latencyTargetSeconds(cfg, lstm) * 1e3;

    // A stylised datacenter diurnal profile (fraction of peak per hour).
    const std::vector<double> profile = {
        0.08, 0.06, 0.05, 0.05, 0.06, 0.10, 0.18, 0.30,
        0.42, 0.50, 0.52, 0.55, 0.58, 0.55, 0.50, 0.48,
        0.45, 0.42, 0.40, 0.38, 0.32, 0.25, 0.15, 0.10};
    double avg = 0.0;
    for (double l : profile)
        avg += l;
    avg /= static_cast<double>(profile.size());

    std::printf("Equinox_500us hosting %s inference (SLO: p99 <= "
                "%.1f ms) + %s training\n", lstm.name.c_str(), target_ms,
                lstm.name.c_str());
    std::printf("diurnal average load: %.0f%% (the paper's ~30%% "
                "motivation)\n\n", avg * 100);
    std::printf("%5s %6s %12s %12s %10s %8s\n", "hour", "load",
                "inf TOp/s", "train TOp/s", "p99 (ms)", "SLO");

    core::ExperimentOptions opts;
    opts.train_model = lstm;
    opts.warmup_requests = 200;
    opts.measure_requests = 1500;
    opts.min_measure_s = 0.02;

    double train_ops_day = 0.0;
    double inf_ops_day = 0.0;
    bool slo_held = true;
    for (std::size_t hour = 0; hour < profile.size(); ++hour) {
        auto r = core::runAtLoad(cfg, profile[hour], opts);
        bool ok = r.p99_ms <= target_ms;
        slo_held = slo_held && ok;
        // Scale the measured steady-state rates to one hour.
        train_ops_day += r.training_tops * 3600.0;
        inf_ops_day += r.inference_tops * 3600.0;
        std::printf("%5zu %5.0f%% %12.1f %12.1f %10.2f %8s\n", hour,
                    profile[hour] * 100, r.inference_tops,
                    r.training_tops, r.p99_ms, ok ? "ok" : "VIOLATED");
    }

    // One training iteration of LSTM batch 128 costs:
    workload::Compiler compiler(cfg);
    auto train = compiler.compileTraining(lstm, 128);
    double ops_per_iter =
        static_cast<double>(train.iteration.totalRealOps());

    std::printf("\nover the day: %.1f exa-ops of inference served, "
                "%.1f exa-ops of training\nreclaimed for free = %.1f "
                "million SGD iterations (batch 128). SLO %s.\n",
                inf_ops_day / 1e6, train_ops_day / 1e6,
                train_ops_day * 1e12 / ops_per_iter / 1e6,
                slo_held ? "held all day" : "was violated");
    return 0;
}

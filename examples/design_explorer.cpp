/**
 * @file
 * Design explorer: run the section-4 design-space exploration under
 * custom envelopes from the command line.
 *
 * Usage:
 *   design_explorer [latency_us] [encoding] [power_w] [area_mm2]
 *     latency_us  service-time budget in microseconds (default 500)
 *     encoding    hbfp8 | bfloat16 (default hbfp8)
 *     power_w     power envelope in watts (default 75)
 *     area_mm2    die budget in mm^2 (default 300)
 *
 * Example:  ./build/examples/design_explorer 100 hbfp8 50 200
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/equinox.hh"

int
main(int argc, char **argv)
{
    using namespace equinox;
    setQuietLogging(true);

    double latency_us = argc > 1 ? std::atof(argv[1]) : 500.0;
    arith::Encoding enc = arith::Encoding::Hbfp8;
    if (argc > 2 && std::strcmp(argv[2], "bfloat16") == 0)
        enc = arith::Encoding::Bfloat16;
    model::TechParams tech = model::defaultTechParams();
    if (argc > 3)
        tech.power_budget = std::atof(argv[3]);
    if (argc > 4)
        tech.die_area = std::atof(argv[4]);

    std::printf("exploring %s designs under %.0f us latency, %.0f W, "
                "%.0f mm^2 ...\n",
                arith::encodingName(enc), latency_us, tech.power_budget,
                tech.die_area);

    auto sweep = model::exploreDesignSpace(tech, enc);
    auto best = model::bestUnderLatency(sweep, latency_us * 1e-6);
    if (!best) {
        std::printf("no feasible design meets the constraints.\n");
        return 1;
    }

    std::printf("\nselected design point:\n");
    std::printf("  MMU: m=%u systolic arrays of %ux%u PEs, %u values "
                "wide (%llu MACs/cycle)\n", best->m, best->n, best->n,
                best->w,
                static_cast<unsigned long long>(
                    static_cast<std::uint64_t>(best->m) * best->n *
                    best->n * best->w));
    std::printf("  frequency: %.0f MHz (%.2f V near-threshold "
                "operating point)\n", best->frequency_hz / 1e6,
                tech.voltageAt(best->frequency_hz));
    std::printf("  peak throughput: %.1f TOp/s\n",
                best->throughput_ops / 1e12);
    std::printf("  LSTM-2048 batch-of-%u service time: %.1f us\n",
                best->n, best->service_time_s * 1e6);
    std::printf("  area: %.0f mm^2, power: %.1f W\n", best->area_mm2,
                best->power_w);

    // What the workloads would see on this design.
    auto cfg = model::toAcceleratorConfig(*best, "custom");
    std::printf("\nworkload saturation throughput on this design:\n");
    for (auto m : {workload::DnnModel::lstm2048(),
                   workload::DnnModel::gru2816(),
                   workload::DnnModel::resnet50()}) {
        std::printf("  %-9s %7.1f TOp/s\n", m.name.c_str(),
                    core::saturationOpRate(cfg, m) / 1e12);
    }

    // And the synthesis-proxy breakdown.
    auto rep = synth::synthesize(cfg, tech);
    std::printf("\nsynthesis proxy: %.0f mm^2, %.1f W total; "
                "controllers %.2f%% power, SIMD unit %.1f%% power\n",
                rep.total_area, rep.total_power,
                rep.controller_power_frac * 100,
                rep.encoding_power_frac * 100);
    return 0;
}
